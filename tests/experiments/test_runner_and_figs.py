"""Runner memoization and the figure-module report structures."""

import pytest

from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


def test_suite_is_memoized(ctx):
    a = ctx.suite("galgel")
    b = ctx.suite("galgel")
    assert a is b


def test_distinct_keys_are_distinct_runs(ctx):
    from repro.layout.files import default_layout
    from repro.util.units import KB

    wl = ctx.workload("galgel")
    lay = default_layout(wl.program.arrays, num_disks=8, stripe_size=32 * KB)
    a = ctx.suite("galgel")
    b = ctx.suite("galgel", layout=lay, key=("stripe_size", 32 * KB))
    assert a is not b
    assert b.layout.layout_tuple("G1")[2] == 32 * KB


def test_workload_is_memoized(ctx):
    assert ctx.workload("swim") is ctx.workload("swim")


def test_fig3_report_structure(ctx):
    from repro.experiments.fig3 import run

    rep = run(ctx)
    assert rep.experiment_id == "fig3"
    assert "average" in rep.rows
    assert len(rep.rows) == 7  # 6 benchmarks + average
    assert rep.columns == (
        "Base", "TPM", "ITPM", "DRPM", "IDRPM", "CMTPM", "CMDRPM",
    )


def test_fig4_average_row_consistent(ctx):
    from repro.experiments.fig4 import run

    rep = run(ctx)
    names = [r for r in rep.rows if r != "average"]
    for col in rep.columns:
        manual = sum(rep.value(n, col) for n in names) / len(names)
        assert rep.value("average", col) == pytest.approx(manual)


def test_fig5_6_share_one_sweep(ctx):
    """fig5 and fig6 derive from the same suites: asking for both costs one
    set of simulations (the context cache serves the second)."""
    from repro.experiments.fig5_6 import run
    from repro.util.units import KB

    before = len(ctx._suites)
    run(ctx, stripe_sizes=(32 * KB,))
    mid = len(ctx._suites)
    run(ctx, stripe_sizes=(32 * KB,))
    after = len(ctx._suites)
    assert mid > before
    assert after == mid


def test_fig7_8_num_disks_respected(ctx):
    from repro.experiments.fig7_8 import sweep

    for factor, suite in sweep(ctx, factors=(2,)):
        assert suite.layout.num_disks == 2
        assert suite.base.num_disks == 2


def test_cli_lists_all_ids():
    from repro.experiments.cli import EXPERIMENT_IDS

    assert set(EXPERIMENT_IDS) >= {
        "table1", "table2", "table3",
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig13",
        "ablation_preactivation", "ext_multitiling", "ext_pdc", "summary_edp",
    }


def test_cli_all_expands(monkeypatch, capsys):
    """'all' expands to every id; patch run_experiment to avoid the cost."""
    from repro.experiments import cli

    seen = []

    def fake(exp_id, ctx):
        seen.append(exp_id)
        return []

    monkeypatch.setattr(cli, "run_experiment", fake)
    cli.main(["all"])
    assert list(seen) == list(cli.EXPERIMENT_IDS)


def test_top_level_package_exports():
    import repro

    assert repro.__version__ == "1.0.0"
    suiteless = repro.build_workload("galgel")
    assert suiteless.name == "galgel"
    assert "CMDRPM" in repro.SCHEME_NAMES
