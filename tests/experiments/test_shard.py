"""Sharded sweep execution: decomposition, dedupe, bit-identical merge.

The 2-worker equivalence test forces real worker processes
(``clamp_to_cpus=False``) so it exercises the pool machinery even on a
single-core machine, mirroring ``tests/experiments/test_parallel.py``.
"""

import pytest

from repro.cache import ResultCache
from repro.experiments.parallel import SuiteSpec
from repro.experiments.runner import ExperimentContext
from repro.experiments.schemes import SCHEME_NAMES, run_workload
from repro.experiments.shard import ShardScheduler
from repro.workloads.registry import WORKLOAD_NAMES, build_workload

WORKLOAD = "wupwise"


@pytest.fixture(scope="module")
def serial_suite():
    return run_workload(build_workload(WORKLOAD), schemes=SCHEME_NAMES)


class TestShardScheduler:
    def test_two_worker_run_matches_serial(
        self, tmp_path, serial_suite, assert_results_identical
    ):
        """A 2-worker sharded run merges bit-identical to the serial
        suite, computing each unique shard exactly once even with a
        duplicate spec in the sweep."""
        sched = ShardScheduler(
            jobs=2, cache_root=tmp_path / "cache", clamp_to_cpus=False
        )
        specs = [SuiteSpec(WORKLOAD), SuiteSpec(WORKLOAD, key=("dup",))]
        got, got_dup = sched.run(specs)

        assert list(got.results) == list(serial_suite.results)
        for scheme in SCHEME_NAMES:
            assert_results_identical(
                serial_suite.results[scheme], got.results[scheme]
            )
            assert_results_identical(
                got.results[scheme], got_dup.results[scheme]
            )

        stats = sched.stats
        assert stats.requested == 2 * len(SCHEME_NAMES)
        assert stats.unique == len(SCHEME_NAMES)
        assert stats.deduped == len(SCHEME_NAMES)
        # Exactly-once: every unique shard computed, none twice, none
        # pulled from a pre-warmed cache.
        assert stats.computed == stats.unique
        assert stats.cache_hits == 0
        assert (
            stats.requested
            == stats.deduped + stats.cache_hits + stats.computed
        )

    def test_warm_cache_computes_nothing(self, tmp_path, serial_suite):
        root = tmp_path / "cache"
        first = ShardScheduler(jobs=1, cache_root=root)
        first.run([SuiteSpec(WORKLOAD)])
        assert first.stats.computed == len(SCHEME_NAMES)

        second = ShardScheduler(jobs=1, cache_root=root)
        suites = second.run([SuiteSpec(WORKLOAD)])
        assert second.stats.computed == 0
        assert second.stats.cache_hits == len(SCHEME_NAMES)
        assert suites[0].results.keys() == serial_suite.results.keys()

    def test_serial_scheduler_matches_serial(
        self, tmp_path, serial_suite, assert_results_identical
    ):
        """jobs=1 keeps the decomposition/dedupe/merge semantics without a
        pool; results are still bit-identical."""
        sched = ShardScheduler(jobs=1, cache_root=tmp_path / "cache")
        (got,) = sched.run([SuiteSpec(WORKLOAD)])
        for scheme in SCHEME_NAMES:
            assert_results_identical(
                serial_suite.results[scheme], got.results[scheme]
            )

    def test_two_worker_all_suites_matches_serial(
        self, tmp_path, assert_results_identical
    ):
        """The full Table 2 benchmark set, sharded over 2 workers, is
        bit-identical to ``ExperimentContext.all_suites()`` and computes
        each unique (configuration, scheme) shard exactly once."""
        serial = ExperimentContext(cache=False).all_suites()
        sched = ShardScheduler(
            jobs=2, cache_root=tmp_path / "cache", clamp_to_cpus=False
        )
        suites = sched.run([SuiteSpec(name) for name in WORKLOAD_NAMES])

        for name, got in zip(WORKLOAD_NAMES, suites):
            for scheme in SCHEME_NAMES:
                assert_results_identical(
                    serial[name].results[scheme], got.results[scheme]
                )
        stats = sched.stats
        assert stats.requested == len(WORKLOAD_NAMES) * len(SCHEME_NAMES)
        assert stats.computed == stats.unique == stats.requested
        assert stats.deduped == 0 and stats.cache_hits == 0

    def test_private_cache_when_none_given(self):
        sched = ShardScheduler(jobs=1)
        assert sched.cache_root
        assert sched._tmp is not None


class TestContextIntegration:
    def test_sharded_context_suite_matches_plain(
        self, tmp_path, serial_suite, assert_results_identical
    ):
        ctx = ExperimentContext(
            cache=ResultCache(tmp_path / "cache"), shard=True
        )
        got = ctx.suite(WORKLOAD)
        for scheme in SCHEME_NAMES:
            assert_results_identical(
                serial_suite.results[scheme], got.results[scheme]
            )
        assert ctx.shard_stats()["computed"] == len(SCHEME_NAMES)
        # Memoized: a second call does not re-run the scheduler.
        runs_before = ctx.shard_stats()["runs"]
        ctx.suite(WORKLOAD)
        assert ctx.shard_stats()["runs"] == runs_before

    def test_sharded_prefetch_dedupes_against_cache(self, tmp_path):
        ctx = ExperimentContext(
            cache=ResultCache(tmp_path / "cache"), shard=True
        )
        ctx.prefetch([SuiteSpec(WORKLOAD, params=ctx.params)])
        first = dict(ctx.shard_stats())
        assert first["computed"] == len(SCHEME_NAMES)

        fresh = ExperimentContext(
            cache=ResultCache(tmp_path / "cache"), shard=True
        )
        fresh.prefetch([SuiteSpec(WORKLOAD, params=fresh.params)])
        warm = fresh.shard_stats()
        assert warm["computed"] == 0
        assert warm["cache_hits"] == len(SCHEME_NAMES)

    def test_plain_context_never_builds_scheduler(self):
        ctx = ExperimentContext(cache=False)
        assert ctx.shard_stats() is None
