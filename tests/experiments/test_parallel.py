"""Parallel engine: jobs resolution, CPU clamp, serial equivalence.

The equivalence tests force real worker processes (``clamp_to_cpus=False``)
so they exercise the pool machinery even on a single-core machine.
"""

import pytest

from repro.analysis.cycles import EstimationModel
from repro.disksim.params import SubsystemParams
from repro.experiments.parallel import (
    ReplayTask,
    SuiteExecutor,
    SuiteSpec,
    _cgroup_quota_cpus,
    available_cpus,
    resolve_jobs,
)
from repro.experiments.schemes import SCHEME_NAMES, run_schemes, run_workload
from repro.util.errors import ReproError
from repro.workloads.registry import build_workload

#: Two benchmarks is enough to cover the suite grain without making the
#: unit suite crawl (each suite is 7 full replays).
WORKLOADS = ("wupwise", "mgrid")


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_auto_and_zero_mean_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() >= 1
        assert resolve_jobs(0) >= 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ReproError):
            resolve_jobs()

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_jobs(-2)


class TestExecutorShape:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert SuiteExecutor().serial

    def test_clamped_to_available_cpus(self):
        ex = SuiteExecutor(jobs=10_000)
        assert ex.requested_jobs == 10_000
        assert ex.jobs == available_cpus()

    def test_clamp_opt_out(self):
        ex = SuiteExecutor(jobs=4, clamp_to_cpus=False)
        assert ex.jobs == 4
        assert not ex.serial


class TestCgroupQuota:
    """cgroup v2 ``cpu.max`` parsing: the container's CPU quota must cap
    ``available_cpus`` even when the scheduler affinity mask is wider."""

    @pytest.mark.parametrize(
        ("content", "expected"),
        [
            ("150000 100000\n", 2),   # fractional quotas round up
            ("200000 100000\n", 2),
            ("100000 100000\n", 1),
            ("50000 100000\n", 1),    # sub-core quotas floor at one CPU
            ("max 100000\n", None),   # unlimited
            ("garbage\n", None),
            ("", None),
        ],
    )
    def test_quota_parsing(self, tmp_path, content, expected):
        path = tmp_path / "cpu.max"
        path.write_text(content)
        assert _cgroup_quota_cpus(path) == expected

    def test_missing_file_means_no_quota(self, tmp_path):
        assert _cgroup_quota_cpus(tmp_path / "absent") is None

    def test_available_cpus_at_least_one(self):
        assert available_cpus() >= 1


class TestEquivalence:
    def test_suite_grain_matches_serial(self, assert_results_identical):
        """Fanning whole (workload, config) suites out over worker
        processes yields results identical to the serial loop."""
        serial = [
            run_workload(build_workload(name), schemes=SCHEME_NAMES)
            for name in WORKLOADS
        ]
        ex = SuiteExecutor(jobs=2, clamp_to_cpus=False)
        parallel = ex.run_suites([SuiteSpec(name) for name in WORKLOADS])
        for ser, par in zip(serial, parallel):
            assert ser.program_name == par.program_name
            assert set(ser.results) == set(par.results)
            for scheme in SCHEME_NAMES:
                assert_results_identical(ser.results[scheme], par.results[scheme])

    def test_replay_grain_matches_serial(
        self, phase_program, phase_layout, small_trace_options,
        assert_results_identical,
    ):
        """Within one suite, parallel non-Base replays equal serial ones."""
        params = SubsystemParams(num_disks=4)
        est = EstimationModel(relative_error=0.05)
        serial = run_schemes(
            phase_program, phase_layout, params, small_trace_options, est
        )
        ex = SuiteExecutor(jobs=2, clamp_to_cpus=False)
        parallel = run_schemes(
            phase_program,
            phase_layout,
            params,
            small_trace_options,
            est,
            executor=ex,
        )
        for scheme in SCHEME_NAMES:
            assert_results_identical(
                serial.results[scheme], parallel.results[scheme]
            )

    def test_results_keep_submission_order(self):
        ex = SuiteExecutor(jobs=2, clamp_to_cpus=False)
        tasks = [
            ReplayTask(
                scheme="DRPM",
                trace=trace,
                params=SubsystemParams(num_disks=trace.layout.num_disks),
            )
            for trace in self._two_traces()
        ]
        out = ex.run_replays(tasks)
        assert [r.program_name for r in out] == [
            t.trace.program_name for t in tasks
        ]

    @staticmethod
    def _two_traces():
        from repro.trace.generator import generate_trace

        for name in WORKLOADS:
            wl = build_workload(name)
            from repro.layout.files import default_layout

            layout = default_layout(
                wl.program.arrays, num_disks=SubsystemParams().num_disks
            )
            yield generate_trace(wl.program, layout, wl.trace_options)
