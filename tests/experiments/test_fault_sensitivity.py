"""Fault-sensitivity experiment and the CLI fault flags."""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.faults import fault_sensitivity
from repro.experiments.runner import ExperimentContext
from repro.faults import DEFAULT_FAULT_SEED, FaultConfig, FaultRates


def test_fault_sensitivity_report_shape_and_erosion():
    ctx = ExperimentContext(cache=False)
    rep = fault_sensitivity(ctx, benchmark="swim", severities=(0.0, 0.4))
    assert rep.experiment_id == "fault_sensitivity"
    assert list(rep.rows) == ["sev=0", "sev=0.4"]
    # Reactive DRPM is deadline-free: its normalized energy stays put.
    drpm0 = rep.value("sev=0", "E_DRPM")
    drpm1 = rep.value("sev=0.4", "E_DRPM")
    assert drpm1 == pytest.approx(drpm0, rel=0.05)
    # The compiler-directed scheme pays for missed deadlines: energy rises
    # and the miss/degraded counters actually fire.
    assert rep.value("sev=0.4", "E_CMDRPM") > rep.value("sev=0", "E_CMDRPM")
    assert rep.value("sev=0", "misses") == 0.0
    assert rep.value("sev=0.4", "misses") > 0
    assert rep.value("sev=0.4", "degraded") > 0


def test_fault_sensitivity_zero_severity_reuses_clean_suite():
    ctx = ExperimentContext(cache=False)
    clean = ctx.suite("swim")
    rep = fault_sensitivity(ctx, benchmark="swim", severities=(0.0,))
    assert ctx.suite("swim") is clean  # memo key () — no duplicate run
    assert rep.value("sev=0", "misses") == 0.0


# --------------------------------------------------------------------- #
# CLI flags
# --------------------------------------------------------------------- #
def test_cli_parses_fault_flags():
    args = build_parser().parse_args(
        ["--fault-seed", "7", "--fault-rates", "severity=0.1", "table2"]
    )
    assert args.fault_seed == 7
    assert args.fault_rates == "severity=0.1"


def test_cli_builds_fault_config(monkeypatch, capsys):
    """main() must hand the experiment context the parsed regime."""
    seen = {}

    def fake_run(exp_id, ctx):
        seen["faults"] = ctx.faults
        from repro.experiments.report import ExperimentReport

        return [ExperimentReport("fig2", "stub", columns=("x",))]

    monkeypatch.setattr("repro.experiments.cli.run_experiment", fake_run)
    rc = main(["--no-cache", "--fault-rates", "severity=0.2", "fig2"])
    assert rc == 0
    assert seen["faults"] == FaultConfig(
        seed=DEFAULT_FAULT_SEED, rates=FaultRates.from_severity(0.2)
    )
    capsys.readouterr()


def test_cli_without_fault_flags_leaves_faults_unset(monkeypatch, capsys):
    seen = {}

    def fake_run(exp_id, ctx):
        seen["faults"] = ctx.faults
        from repro.experiments.report import ExperimentReport

        return [ExperimentReport("fig2", "stub", columns=("x",))]

    monkeypatch.setattr("repro.experiments.cli.run_experiment", fake_run)
    assert main(["--no-cache", "fig2"]) == 0
    assert seen["faults"] is None
    capsys.readouterr()
