"""Report containers and rendering."""

import pytest

from repro.experiments.report import ExperimentReport, format_table, geometric_mean


def test_format_table_alignment():
    text = format_table("T", ("a", "b"), {"row1": (1.0, 2.5), "row2": (0.125, 3.0)})
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert "1.000" in lines[2] and "2.500" in lines[2]


def test_report_add_and_query():
    rep = ExperimentReport("x", "title", ("c1", "c2"))
    rep.add_row("r", (1.0, "n/a"))
    assert rep.value("r", "c1") == 1.0
    assert rep.value("r", "c2") == "n/a"
    with pytest.raises(ValueError):
        rep.add_row("bad", (1.0,))


def test_column_mean_skips_strings():
    rep = ExperimentReport("x", "t", ("c",))
    rep.add_row("a", (2.0,))
    rep.add_row("b", (4.0,))
    rep.add_row("c", ("skip",))
    assert rep.column_mean("c") == pytest.approx(3.0)
    assert rep.column_mean("c", rows=["a"]) == pytest.approx(2.0)


def test_column_mean_all_strings_raises():
    rep = ExperimentReport("x", "t", ("c",))
    rep.add_row("a", ("s",))
    with pytest.raises(ValueError):
        rep.column_mean("c")


def test_render_includes_notes():
    rep = ExperimentReport("fig0", "demo", ("c",))
    rep.add_row("a", (1.0,))
    rep.notes.append("hello")
    out = rep.render()
    assert "[fig0] demo" in out
    assert "note: hello" in out


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    import math

    assert math.isnan(geometric_mean([]))
