"""The ``trace_replay`` suite: sources, synth specs, caching, CLI wiring."""

from pathlib import Path

import pytest

from repro.cache import ResultCache
from repro.experiments.cli import build_parser, main
from repro.experiments.runner import ExperimentContext
from repro.experiments.trace_replay import (
    TRACE_REPLAY_SCHEMES,
    STREAM_THRESHOLD_REQUESTS,
    TraceSource,
    default_sources,
    last_manifest_section,
    parse_synth_spec,
    run_trace_replay,
)
from repro.trace.synth import SynthConfig
from repro.util.errors import ReproError

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "fixtures" / "traces" / "small.trace"
)


# --------------------------------------------------------------------- #
# Synth-spec parsing
# --------------------------------------------------------------------- #
def test_parse_synth_spec_fields_and_alias():
    cfg = parse_synth_spec("model=onoff, n=5000, lba_skew=0.8, seed=7")
    assert cfg.model == "onoff"
    assert cfg.num_requests == 5000
    assert cfg.lba_skew == 0.8
    assert cfg.seed == 7
    # Empty spec: the documented default size.
    assert parse_synth_spec("").num_requests == 20_000


@pytest.mark.parametrize(
    "spec",
    [
        "model",                 # not key=value
        "wibble=3",              # unknown key
        "num_disks=8",           # reserved: comes from the params
        "n=lots",                # unconvertible value
    ],
)
def test_parse_synth_spec_rejects(spec):
    with pytest.raises(ReproError):
        parse_synth_spec(spec)


# --------------------------------------------------------------------- #
# TraceSource construction
# --------------------------------------------------------------------- #
def test_trace_source_is_file_xor_synth():
    with pytest.raises(ReproError):
        TraceSource(label="neither")
    with pytest.raises(ReproError):
        TraceSource(
            label="both", path="x.trace", synth=SynthConfig(num_requests=10)
        )


def test_trace_source_constructors():
    src = TraceSource.from_file(FIXTURE)
    assert src.label == "small"
    assert not src.streamed
    small = TraceSource.from_synth(SynthConfig(num_requests=100))
    assert small.label == "synth-poisson-100" and not small.streamed
    big = TraceSource.from_synth(
        SynthConfig(num_requests=STREAM_THRESHOLD_REQUESTS)
    )
    assert big.streamed  # large synthetics replay bounded-memory
    assert len(default_sources()) == 2


# --------------------------------------------------------------------- #
# The suite itself
# --------------------------------------------------------------------- #
def _sources():
    return (
        TraceSource.from_file(FIXTURE),
        TraceSource.from_synth(
            SynthConfig(num_requests=800, model="onoff", seed=5)
        ),
    )


def test_run_trace_replay_report_and_manifest():
    ctx = ExperimentContext(cache=False)
    rep = run_trace_replay(ctx, sources=_sources())
    assert rep.experiment_id == "trace_replay"
    assert rep.columns == TRACE_REPLAY_SCHEMES
    assert list(rep.rows) == [
        "small (E)", "small (T)",
        "synth-onoff-800 (E)", "synth-onoff-800 (T)",
    ]
    for label in ("small", "synth-onoff-800"):
        assert rep.value(f"{label} (E)", "Base") == 1.0
        assert rep.value(f"{label} (T)", "Base") == 1.0
        # The documented degradation: no directives == Base, bit-exactly.
        for scheme in ("CMTPM", "CMDRPM"):
            assert rep.value(f"{label} (E)", scheme) == 1.0
            assert rep.value(f"{label} (T)", scheme) == 1.0
    assert any("degrade to the no-directive baseline" in n for n in rep.notes)

    section = last_manifest_section()
    assert section["mode"] == "open-loop"
    assert section["degraded_schemes"] == ["CMTPM", "CMDRPM"]
    kinds = {s["kind"] for s in section["sources"]}
    assert kinds == {"ingest", "synth"}
    assert section["sources"][0]["requests"] == 48  # the bundled fixture


def test_streamed_source_skips_oracles():
    ctx = ExperimentContext(cache=False)
    src = TraceSource(
        label="forced-stream",
        synth=SynthConfig(num_requests=600, model="poisson", seed=2),
        streamed=True,
    )
    rep = run_trace_replay(ctx, sources=(src,))
    assert rep.value("forced-stream (E)", "ITPM") == "-"
    assert rep.value("forced-stream (E)", "IDRPM") == "-"
    assert rep.value("forced-stream (E)", "TPM") != "-"
    assert any("oracle schemes skipped" in n for n in rep.notes)


def test_ctx_sources_default_and_fallback():
    src = TraceSource.from_synth(
        SynthConfig(num_requests=300, model="poisson", seed=9)
    )
    ctx = ExperimentContext(cache=False, trace_sources=(src,))
    rep = run_trace_replay(ctx)
    assert list(rep.rows) == [
        "synth-poisson-300 (E)", "synth-poisson-300 (T)",
    ]


def test_cache_round_trip_is_exact(tmp_path):
    sources = _sources()
    first = run_trace_replay(
        ExperimentContext(cache=ResultCache(tmp_path)), sources=sources
    )
    again = run_trace_replay(
        ExperimentContext(cache=ResultCache(tmp_path)), sources=sources
    )
    for row in first.rows:
        for col in TRACE_REPLAY_SCHEMES:
            assert again.value(row, col) == first.value(row, col)


# --------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------- #
def test_cli_parses_trace_flags():
    args = build_parser().parse_args(
        [
            "--trace-in", "a.trace", "--trace-in", "b.trace",
            "--trace-format", "text", "--trace-mapping", "range",
            "--synth", "model=onoff,n=1000",
            "trace_replay",
        ]
    )
    assert args.trace_in == ["a.trace", "b.trace"]
    assert args.trace_format == "text"
    assert args.trace_mapping == "range"
    assert args.synth == ["model=onoff,n=1000"]


def test_cli_runs_trace_replay_end_to_end(capsys):
    rc = main(
        [
            "--no-cache",
            "--trace-in", str(FIXTURE),
            "--synth", "model=poisson,n=500",
            "trace_replay",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace_replay" in out
    assert "small (E)" in out
    assert "synth-poisson-500 (E)" in out
