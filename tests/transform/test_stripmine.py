"""Strip-mining (paper §3's loop restructuring for call insertion)."""

import pytest

from repro.analysis.access import analyze_nest
from repro.ir.builder import ProgramBuilder
from repro.ir.nodes import PowerAction, PowerCall
from repro.transform.stripmine import strip_mine, strip_mine_with_call
from repro.util.errors import TransformError


def _loop():
    b = ProgramBuilder("p")
    A = b.array("A", (64,))
    with b.nest("i", 0, 64) as i:
        b.stmt(reads=[A[i]], cycles=2)
    return b.build().nest(0), b


def test_strip_mine_structure():
    loop, _ = _loop()
    mined = strip_mine(loop, 16)
    assert mined.var == "i_s"
    assert mined.trip_count == 4
    inner = mined.body[0]
    assert inner.var == "i_e"
    assert inner.trip_count == 16
    assert mined.total_statement_executions() == 64


def test_strip_mine_preserves_footprint():
    loop, _ = _loop()
    mined = strip_mine(loop, 8)
    assert analyze_nest(mined).total_region("A") == analyze_nest(loop).total_region("A")


def test_strip_mine_validation():
    loop, _ = _loop()
    with pytest.raises(TransformError):
        strip_mine(loop, 7)  # does not divide 64
    from repro.ir.nodes import Loop

    with pytest.raises(TransformError):
        strip_mine(Loop("i", 1, 65, loop.body), 8)  # non-normalized


def test_strip_mine_with_call_peels():
    loop, _ = _loop()
    call = PowerCall(PowerAction.SPIN_UP, 3)
    nodes = strip_mine_with_call(loop, 16, call, at_strip=2)
    assert len(nodes) == 3
    head, mid, tail = nodes
    assert head.trip_count == 2
    assert mid is call
    assert tail.trip_count == 2
    total = head.total_statement_executions() + tail.total_statement_executions()
    assert total == 64


def test_strip_mine_with_call_at_edges():
    loop, _ = _loop()
    call = PowerCall(PowerAction.SPIN_DOWN, 0)
    at_start = strip_mine_with_call(loop, 16, call, at_strip=0)
    assert at_start[0] is call
    at_end = strip_mine_with_call(loop, 16, call, at_strip=4)
    assert at_end[-1] is call
    with pytest.raises(TransformError):
        strip_mine_with_call(loop, 16, call, at_strip=5)
