"""Loop distribution (Fig. 11)."""

import pytest

from repro.analysis.access import analyze_nest
from repro.ir.builder import ProgramBuilder
from repro.ir.validate import validate_program
from repro.transform.fission import fission_nest, fission_program, fissionable
from repro.transform.grouping import array_groups


def _two_group_program():
    b = ProgramBuilder("p")
    A = b.array("A", (16, 16))
    B = b.array("B", (16, 16))
    C = b.array("C", (16, 16))
    D = b.array("D", (16, 16))
    with b.nest("i", 0, 16) as i:
        with b.loop("j", 0, 16) as j:
            b.stmt(reads=[A[i, j]], writes=[B[i, j]], cycles=3)
            b.stmt(reads=[C[i, j]], writes=[D[i, j]], cycles=5)
    return b.build()


def test_fissionable_detection():
    prog = _two_group_program()
    groups = array_groups(prog)
    assert fissionable(prog.nest(0), groups)


def test_not_fissionable_single_group():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 8))
    B = b.array("B", (8, 8))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], writes=[B[i, j]], cycles=1)
    prog = b.build()
    groups = array_groups(prog)
    assert not fissionable(prog.nest(0), groups)
    assert fission_nest(prog.nest(0), groups) == [prog.nest(0)]


def test_fission_splits_by_group():
    prog = _two_group_program()
    res = fission_program(prog)
    assert res.any_applied
    assert len(res.program.nests) == 2
    assert res.nest_mapping == ((0, 1),)
    first, second = res.program.nests
    assert first.arrays == {"A", "B"}
    assert second.arrays == {"C", "D"}


def test_fission_preserves_statement_count_and_cost():
    prog = _two_group_program()
    res = fission_program(prog)
    orig_stmts = list(prog.statements())
    new_stmts = list(res.program.statements())
    assert len(new_stmts) == len(orig_stmts)
    assert sum(s.cost_cycles for s in new_stmts) == pytest.approx(
        sum(s.cost_cycles for s in orig_stmts)
    )


def test_fission_preserves_per_array_footprints():
    """Semantics preservation (group-disjointness legality): every array's
    total accessed region is identical before and after distribution."""
    prog = _two_group_program()
    res = fission_program(prog)
    before = analyze_nest(prog.nest(0))
    for name in ("A", "B", "C", "D"):
        region_before = before.total_region(name)
        region_after = None
        for k, nest in enumerate(res.program.nests):
            acc = analyze_nest(nest, k)
            r = acc.total_region(name)
            if r is not None:
                assert region_after is None, "array split across loops"
                region_after = r
        assert region_after == region_before


def test_fissioned_program_validates():
    res = fission_program(_two_group_program())
    validate_program(res.program)


def test_fission_renames_loop_variables():
    res = fission_program(_two_group_program())
    vars_ = [n.var for n in res.program.nests]
    assert len(set(vars_)) == len(vars_)


def test_fission_keeps_statement_order_within_groups():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 8))
    C = b.array("C", (8, 8))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], cycles=1, label="a1")
            b.stmt(reads=[C[i, j]], cycles=1, label="c1")
            b.stmt(writes=[A[i, j]], cycles=1, label="a2")
    res = fission_program(b.build())
    a_nest = next(n for n in res.program.nests if "A" in n.arrays)
    labels = [s.label for s in a_nest.statements()]
    assert labels == ["a1", "a2"]


def test_multi_nest_mapping():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 8))
    B = b.array("B", (8, 8))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
            b.stmt(reads=[B[i, j]], cycles=1)
    with b.nest("k", 0, 8) as k:
        with b.loop("l", 0, 8) as l:
            b.stmt(reads=[A[k, l]], cycles=1)
    res = fission_program(b.build())
    assert res.nest_mapping == ((0, 1), (2,))
