"""Transformation version builders (LF / TL / LF+DL / TL+DL)."""

import pytest

from repro.layout.files import default_layout
from repro.transform.pipeline import VERSION_NAMES, make_version
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def swim():
    wl = build_workload("swim")
    return wl.program, default_layout(wl.program.arrays, num_disks=8)


@pytest.fixture(scope="module")
def galgel():
    wl = build_workload("galgel")
    return wl.program, default_layout(wl.program.arrays, num_disks=8)


def test_orig_is_identity(swim):
    prog, lay = swim
    v = make_version("orig", prog, lay)
    assert v.program is prog and v.layout is lay and not v.applied


def test_unknown_version_rejected(swim):
    prog, lay = swim
    with pytest.raises(ValueError):
        make_version("LF+TL", prog, lay)


def test_swim_lf_applies_without_restriping(swim):
    prog, lay = swim
    v = make_version("LF", prog, lay)
    assert v.applied
    assert len(v.program.nests) > len(prog.nests)
    assert v.layout is lay


def test_swim_lfdl_restripes_groups_disjointly(swim):
    prog, lay = swim
    v = make_version("LF+DL", prog, lay)
    assert v.applied
    # The six 2-array groups occupy disjoint disk ranges.
    seen: dict[tuple[int, int], set[str]] = {}
    for e in v.layout.entries:
        key = (e.striping.starting_disk, e.striping.stripe_factor)
        seen.setdefault(key, set()).add(e.array_name)
    disk_sets = [
        set(range(s, s + c)) for (s, c) in seen
    ]
    for i, a in enumerate(disk_sets):
        for b_ in disk_sets[i + 1:]:
            assert a.isdisjoint(b_)


def test_swim_tl_not_applicable(swim):
    """swim's sweeps are imperfect nests (row reductions): no tiling —
    matching §6.2's list of TL+DL beneficiaries."""
    prog, lay = swim
    assert not make_version("TL", prog, lay).applied
    assert not make_version("TL+DL", prog, lay).applied


def test_galgel_no_version_applies(galgel):
    """galgel is the paper's negative control: not fissionable, untileable."""
    prog, lay = galgel
    for name in ("LF", "TL", "LF+DL", "TL+DL"):
        assert not make_version(name, prog, lay).applied


def test_wupwise_tiling_applies_with_transpose():
    wl = build_workload("wupwise")
    lay = default_layout(wl.program.arrays, num_disks=8)
    assert not make_version("LF", wl.program, lay).applied  # not fissionable
    v = make_version("TL+DL", wl.program, lay)
    assert v.applied
    assert "ZP" in v.detail  # the propagator matrix was transformed


def test_applu_gets_both():
    wl = build_workload("applu")
    lay = default_layout(wl.program.arrays, num_disks=8)
    assert make_version("LF+DL", wl.program, lay).applied
    assert make_version("TL+DL", wl.program, lay).applied


def test_version_names_constant():
    assert VERSION_NAMES == ("orig", "LF", "TL", "LF+DL", "TL+DL", "TL*+DL")
