"""Layout-aware loop tiling (Fig. 12)."""

import pytest

from repro.analysis.access import analyze_nest
from repro.ir.arrays import StorageOrder
from repro.ir.builder import ProgramBuilder
from repro.ir.validate import validate_program
from repro.layout.files import default_layout
from repro.transform.tiling import (
    apply_tiling,
    costliest_nest_index,
    is_perfect_2d_nest,
    tile_nest_loops,
)
from repro.util.errors import TransformError


def _fig10_program(n=64):
    """The paper's Figure 10 shape: U1[i][j] (conforming) and U2[j][i]
    (non-conforming: the inner variable indexes U2's slow dimension)."""
    b = ProgramBuilder("fig10")
    U1 = b.array("U1", (n, n))
    U2 = b.array("U2", (n, n))
    with b.nest("i", 0, n) as i:
        with b.loop("j", 0, n) as j:
            b.stmt(reads=[U1[i, j], U2[j, i]], cycles=2)
    return b.build()


def test_perfect_2d_detection():
    prog = _fig10_program()
    assert is_perfect_2d_nest(prog.nest(0))
    b = ProgramBuilder("imp")
    A = b.array("A", (8, 8))
    with b.nest("i", 0, 8) as i:
        b.stmt(reads=[A[i, 0]], cycles=1)  # outer-level statement
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
    assert not is_perfect_2d_nest(b.build().nest(0))


def test_tile_nest_loops_structure():
    prog = _fig10_program(64)
    tiled = tile_nest_loops(prog.nest(0), 16, 16)
    assert tiled.var == "i_t" and tiled.trip_count == 4
    tj = tiled.body[0]
    ei = tj.body[0]
    ej = ei.body[0]
    assert (tj.var, ei.var, ej.var) == ("j_t", "i_e", "j_e")
    assert (tj.trip_count, ei.trip_count, ej.trip_count) == (4, 16, 16)


def test_tiling_preserves_semantics():
    """Total executions, cost, and per-array footprints are invariant."""
    prog = _fig10_program(32)
    tiled = tile_nest_loops(prog.nest(0), 8, 8)
    assert (
        tiled.total_statement_executions()
        == prog.nest(0).total_statement_executions()
    )
    new_prog = prog.with_nest(0, tiled)
    validate_program(new_prog)
    before = analyze_nest(prog.nest(0))
    after = analyze_nest(tiled)
    for name in ("U1", "U2"):
        assert after.total_region(name) == before.total_region(name)


def test_tile_size_must_divide():
    prog = _fig10_program(64)
    with pytest.raises(TransformError):
        tile_nest_loops(prog.nest(0), 48, 16)


def test_costliest_nest_selection():
    b = ProgramBuilder("p")
    small = b.array("S", (8, 8))
    big = b.array("B", (64, 64))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[small[i, j]], cycles=1)
    with b.nest("k", 0, 64) as k:
        with b.loop("l", 0, 64) as l:
            b.stmt(reads=[big[k, l]], cycles=1)
    assert costliest_nest_index(b.build()) == 1


def test_apply_tiling_without_layout_keeps_layout():
    prog = _fig10_program(64)
    lay = default_layout(prog.arrays, num_disks=4)
    res = apply_tiling(prog, lay, with_layout=False)
    assert res.applied
    assert res.layout is lay
    assert res.transposed == ()
    assert res.band_striped == ()


def test_apply_tiling_with_layout_transposes_nonconforming():
    prog = _fig10_program(64)
    lay = default_layout(prog.arrays, num_disks=4)
    res = apply_tiling(prog, lay, with_layout=True)
    assert res.applied
    # U2 is accessed U2[j][i]: inner var j in its slow dim => transposed.
    assert res.transposed == ("U2",)
    assert res.program.array("U2").order is StorageOrder.COLUMN_MAJOR
    assert res.program.array("U1").order is StorageOrder.ROW_MAJOR
    validate_program(res.program)


def test_apply_tiling_band_stripes_confine_activity():
    """After TL+DL, each outer tile iteration touches only the disk holding
    its band — the paper's tile-to-disk mapping."""
    prog = _fig10_program(512)  # 512x512 doubles = 2 MB per array
    lay = default_layout(prog.arrays, num_disks=4)
    res = apply_tiling(prog, lay, with_layout=True, bands_per_disk=2)
    assert set(res.band_striped) == {"U1", "U2"}
    acc = analyze_nest(res.program.nests[res.nest_index], res.nest_index)
    mat = acc.active_disk_matrix(res.layout)
    # Exactly one disk active per outer (band) iteration.
    assert (mat.sum(axis=1) == 1).all()
    # Collocation: U1's band k and U2's band k share the disk (same column
    # active for the iterations that touch band k).
    before = analyze_nest(prog.nest(0)).active_disk_matrix(lay)
    assert (before.sum(axis=1) == 4).all()  # original: every disk, always


def test_apply_tiling_not_applicable_returns_identity():
    b = ProgramBuilder("imp")
    A = b.array("A", (64, 64))
    with b.nest("i", 0, 64) as i:
        b.stmt(reads=[A[i, 0]], cycles=1)
        with b.loop("j", 0, 64) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    res = apply_tiling(prog, lay, with_layout=True)
    assert not res.applied
    assert res.program is prog


# ----------------------------------------------------------------------- #
# Multi-nest tiling (the paper's §6.1 future work, implemented here)
# ----------------------------------------------------------------------- #
def test_multi_tiling_tiles_every_perfect_nest():
    from repro.transform.tiling import apply_tiling_multi

    b = ProgramBuilder("p")
    A = b.array("A", (256, 512))  # 1 MB
    Bm = b.array("B", (512, 256))
    with b.nest("i", 0, 256) as i:
        with b.loop("j", 0, 512) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
    with b.nest("k", 0, 256) as k:
        with b.loop("l", 0, 512) as l:
            b.stmt(reads=[Bm[l, k]], cycles=1)  # column-of-B walk
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    res = apply_tiling_multi(prog, lay, with_layout=True)
    assert res.tiled_nests == (0, 1)
    # B is walked column-wise (inner var l in its slow dim): transposed.
    assert res.transposed == ("B",)
    assert set(res.band_striped) == {"A", "B"}
    validate_program(res.program)


def test_multi_tiling_conflict_resolution():
    """An array accessed row-wise in one nest and column-wise in another is
    left untransformed (conservative) and recorded as a conflict."""
    from repro.transform.tiling import apply_tiling_multi

    b = ProgramBuilder("p")
    A = b.array("A", (128, 128))
    with b.nest("i", 0, 128) as i:
        with b.loop("j", 0, 128) as j:
            b.stmt(reads=[A[i, j]], cycles=1)  # conforming
    with b.nest("k", 0, 128) as k:
        with b.loop("l", 0, 128) as l:
            b.stmt(reads=[A[l, k]], cycles=1)  # non-conforming
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    res = apply_tiling_multi(prog, lay, with_layout=True)
    assert res.conflicts == ("A",)
    assert res.transposed == ()
    assert res.program.array("A").order is StorageOrder.ROW_MAJOR


def test_multi_tiling_skips_memory_nests():
    from repro.transform.tiling import apply_tiling_multi

    b = ProgramBuilder("p")
    A = b.array("A", (128, 512))
    W = b.array("W", (4, 64), memory_resident=True)
    with b.nest("i", 0, 128) as i:
        with b.loop("j", 0, 512) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
    with b.nest("c", 0, 64) as c:
        with b.loop("m", 0, 64) as m:
            b.stmt(reads=[W[0, m]], cycles=100)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    res = apply_tiling_multi(prog, lay, with_layout=True)
    assert res.tiled_nests == (0,)


def test_multi_tiling_identity_when_nothing_tileable():
    from repro.transform.tiling import apply_tiling_multi
    from repro.workloads.registry import build_workload

    wl = build_workload("galgel")
    lay = default_layout(wl.program.arrays, num_disks=8)
    # galgel's sweep nests are imperfect; only the tiny final slice nest is
    # perfect — multi-tiling may tile it, but the program must validate and
    # stay semantically equivalent either way.
    res = apply_tiling_multi(wl.program, lay, with_layout=True)
    validate_program(res.program)
    assert res.program.total_data_bytes == wl.program.total_data_bytes


def test_multi_tiling_beats_single_on_applu():
    """The extension's raison d'etre: tiling every nest confines more of
    the run, so CMDRPM saves strictly more than with single-nest TL+DL."""
    from repro.disksim.params import SubsystemParams
    from repro.experiments.schemes import run_schemes
    from repro.transform.pipeline import make_version
    from repro.workloads.registry import build_workload

    wl = build_workload("applu")
    params = SubsystemParams()
    lay = default_layout(wl.program.arrays, num_disks=8)

    def cmdrpm_energy(version):
        tv = make_version(version, wl.program, lay)
        assert tv.applied
        suite = run_schemes(
            tv.program, tv.layout, params, wl.trace_options, wl.estimation,
            schemes=("Base", "CMDRPM"),
        )
        return suite.results["CMDRPM"].total_energy_j

    assert cmdrpm_energy("TL*+DL") < cmdrpm_energy("TL+DL")
