"""Array grouping (Fig. 11, first half)."""

from repro.ir.builder import ProgramBuilder
from repro.transform.grouping import UnionFind, array_groups, nest_statement_groups


def test_union_find_basics():
    uf = UnionFind()
    for k in "abcd":
        uf.add(k)
    uf.union("a", "b")
    uf.union("c", "d")
    assert uf.find("a") == uf.find("b")
    assert uf.find("a") != uf.find("c")
    groups = {frozenset(g) for g in uf.groups()}
    assert groups == {frozenset("ab"), frozenset("cd")}
    uf.union("b", "c")
    assert len(uf.groups()) == 1


def _paper_fig9_program():
    """The paper's Figure 9 example: three nests over ten arrays yielding
    the groups {U1,U2,U5}, {U3,U4,U8}, {U6,U7}, {U9,U10}."""
    b = ProgramBuilder("fig9")
    U = {k: b.array(f"U{k}", (64, 64)) for k in range(1, 11)}
    with b.nest("i1", 0, 64) as i:
        with b.loop("j1", 0, 64) as j:
            b.stmt(reads=[U[2][i, j]], writes=[U[1][i, j]], cycles=1)
            b.stmt(reads=[U[4][i, j]], writes=[U[3][i, j]], cycles=1)
    with b.nest("i2", 0, 64) as i:
        with b.loop("j2", 0, 64) as j:
            b.stmt(reads=[U[5][i, j]], writes=[U[1][i, j]], cycles=1)  # couples U5-U1
            b.stmt(reads=[U[7][i, j]], writes=[U[6][i, j]], cycles=1)
    with b.nest("i3", 0, 64) as i:
        with b.loop("j3", 0, 64) as j:
            b.stmt(reads=[U[8][i, j]], writes=[U[3][i, j]], cycles=1)  # couples U8-U3
            b.stmt(reads=[U[10][i, j]], writes=[U[9][i, j]], cycles=1)
    return b.build()


def test_paper_figure9_groups():
    groups = array_groups(_paper_fig9_program())
    sets = {g.arrays for g in groups}
    assert sets == {
        frozenset({"U1", "U2", "U5"}),
        frozenset({"U3", "U4", "U8"}),
        frozenset({"U6", "U7"}),
        frozenset({"U9", "U10"}),
    }


def test_group_bytes_and_ordering():
    groups = array_groups(_paper_fig9_program())
    # Deterministic: sorted by footprint desc then names.
    sizes = [g.total_bytes for g in groups]
    assert sizes == sorted(sizes, reverse=True)
    assert groups[0].total_bytes == 3 * 64 * 64 * 8
    assert "U1" in groups[0] or "U3" in groups[0]


def test_nest_statement_groups_partition():
    prog = _paper_fig9_program()
    groups = array_groups(prog)
    by_group = nest_statement_groups(prog.nest(0), groups)
    assert len(by_group) == 2
    total = sum(len(v) for v in by_group.values())
    assert total == 2


def test_single_group_when_all_coupled():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 8))
    B = b.array("B", (8, 8))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], writes=[B[i, j]], cycles=1)
    groups = array_groups(b.build())
    assert len(groups) == 1
    assert groups[0].arrays == {"A", "B"}
