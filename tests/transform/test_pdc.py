"""PDC layout baseline (related work [16])."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.layout.files import default_layout
from repro.transform.pdc import array_popularity, pdc_layout


def _skewed_program():
    """HOT is swept three times, WARM once, COLD referenced barely."""
    b = ProgramBuilder("p")
    hot = b.array("HOT", (64, 1024))
    warm = b.array("WARM", (64, 1024))
    cold = b.array("COLD", (64, 1024))
    mem = b.array("MEM", (2, 64), memory_resident=True)
    for k in range(3):
        with b.nest(f"h{k}", 0, 64) as i:
            with b.loop(f"hj{k}", 0, 1024) as j:
                b.stmt(reads=[hot[i, j]], cycles=1)
    with b.nest("w", 0, 64) as i:
        with b.loop("wj", 0, 1024) as j:
            b.stmt(reads=[warm[i, j]], cycles=1)
    with b.nest("c", 0, 4) as i:
        with b.loop("cj", 0, 1024) as j:
            b.stmt(reads=[cold[i, j]], writes=[mem[0, 0]], cycles=1)
    return b.build()


def test_popularity_counts_reaccesses():
    prog = _skewed_program()
    pop = array_popularity(prog)
    assert pop["HOT"] == 3 * pop["WARM"]
    assert pop["WARM"] > pop["COLD"]
    assert "MEM" not in pop  # memory-resident arrays carry no disk volume


def test_pdc_concentrates_hot_data_first():
    prog = _skewed_program()
    lay = default_layout(prog.arrays, num_disks=4)
    new = pdc_layout(prog, lay)
    hot = new.striping("HOT")
    cold = new.striping("COLD")
    assert hot.stripe_factor == 1  # unstriped: concentration is the point
    assert hot.starting_disk == 0  # most popular goes first
    assert cold.starting_disk >= hot.starting_disk
    # The popularity order is respected: HOT <= WARM <= COLD disk indices.
    warm = new.striping("WARM")
    assert hot.starting_disk <= warm.starting_disk <= cold.starting_disk


def test_pdc_layout_stays_valid_and_simulable():
    from repro.analysis.cycles import EstimationModel
    from repro.disksim.params import SubsystemParams
    from repro.experiments.schemes import run_schemes
    from repro.trace.generator import TraceOptions

    prog = _skewed_program()
    lay = default_layout(prog.arrays, num_disks=4)
    new = pdc_layout(prog, lay)
    suite = run_schemes(
        prog,
        new,
        SubsystemParams(num_disks=4),
        TraceOptions(),
        EstimationModel(relative_error=0.0),
        schemes=("Base", "CMDRPM"),
    )
    assert suite.base.num_requests > 0
    assert suite.normalized_energy("CMDRPM") < 1.0


def test_pdc_unreferenced_arrays_are_coldest():
    b = ProgramBuilder("p")
    used = b.array("USED", (64, 1024))
    b.array("UNUSED", (64, 1024))
    with b.nest("i", 0, 64) as i:
        with b.loop("j", 0, 1024) as j:
            b.stmt(reads=[used[i, j]], cycles=1)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=2)
    new = pdc_layout(prog, lay)
    assert new.striping("USED").starting_disk <= new.striping("UNUSED").starting_disk


def test_pdc_respects_subsystem_bounds():
    prog = _skewed_program()
    for disks in (1, 2, 8):
        lay = default_layout(prog.arrays, num_disks=disks)
        new = pdc_layout(prog, lay)  # __post_init__ validates placement
        assert new.num_disks == disks
        for e in new.entries:
            assert e.striping.starting_disk < disks
