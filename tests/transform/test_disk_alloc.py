"""Proportional disk allocation (Fig. 11's closing step)."""

import pytest

from repro.ir.arrays import Array
from repro.transform.disk_alloc import allocate_disks, group_layout
from repro.transform.grouping import ArrayGroup
from repro.util.errors import TransformError
from repro.util.units import KB, MB


def _groups(*sizes):
    return [
        ArrayGroup(frozenset({f"G{i}_{j}" for j in range(2)}), s)
        for i, s in enumerate(sizes)
    ]


def test_ranges_are_disjoint_and_cover():
    ranges = allocate_disks(_groups(100, 100, 100, 100), 8)
    assert len(ranges) == 4
    covered = []
    for start, count in ranges:
        assert count >= 1
        covered.extend(range(start, start + count))
    assert covered == list(range(8))


def test_proportionality():
    # One group holds 3/4 of the data: it gets the most disks.
    ranges = allocate_disks(_groups(600, 100, 100), 8)
    counts = [c for _, c in ranges]
    assert counts[0] == max(counts)
    assert sum(counts) == 8
    assert all(c >= 1 for c in counts)


def test_one_disk_floor():
    ranges = allocate_disks(_groups(10_000, 1), 2)
    assert [c for _, c in ranges] == [1, 1]


def test_too_many_groups_rejected():
    with pytest.raises(TransformError):
        allocate_disks(_groups(1, 1, 1), 2)
    with pytest.raises(TransformError):
        allocate_disks([], 4)


def test_zero_bytes_groups_still_allocated():
    ranges = allocate_disks(_groups(0, 0), 4)
    assert sum(c for _, c in ranges) == 4


def test_group_layout_stripes_within_group_range():
    arrays = (
        Array("A", (128 * KB // 8,)),
        Array("B", (128 * KB // 8,)),
        Array("C", (128 * KB // 8,)),
    )
    groups = [
        ArrayGroup(frozenset({"A", "B"}), 2 * MB),
        ArrayGroup(frozenset({"C"}), 1 * MB),
    ]
    lay = group_layout(arrays, groups, num_disks=8, stripe_size=64 * KB)
    sa, sb, sc = lay.striping("A"), lay.striping("B"), lay.striping("C")
    assert sa.as_tuple() == sb.as_tuple()
    a_disks = set(sa.disks)
    c_disks = set(sc.disks)
    assert a_disks.isdisjoint(c_disks)
    assert a_disks | c_disks == set(range(8))


def test_group_layout_keeps_unreferenced_arrays():
    arrays = (Array("A", (1024,)), Array("X", (1024,)))
    groups = [ArrayGroup(frozenset({"A"}), 8192)]
    lay = group_layout(arrays, groups, num_disks=4, stripe_size=64 * KB)
    assert lay.striping("X").as_tuple() == (0, 4, 64 * KB)
