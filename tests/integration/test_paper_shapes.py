"""Integration: the paper's qualitative results must hold end-to-end.

These tests run the full Table 2 suite (once, shared via a module fixture)
and assert the *shapes* of the evaluation section:

* §5.1 Figure 3 — TPM/ITPM/CMTPM save nothing on the original codes;
  reactive DRPM saves meaningfully; IDRPM roughly halves the energy;
  CMDRPM comes close to the oracle;
* §5.1 Figure 4 — only reactive DRPM pays an execution-time penalty;
* §5.1 Table 3 — CMDRPM's speed mispredictions are a modest fraction;
* §6.2 Figure 13 — layout-aware transformations make TPM viable (checked
  separately in test_transformations.py; this module covers Figs 3/4 and
  Table 3).
"""

import pytest

from repro.experiments.runner import ExperimentContext
from repro.workloads.registry import WORKLOAD_NAMES


@pytest.fixture(scope="module")
def ctx():
    c = ExperimentContext()
    c.all_suites()
    return c


def _mean(values):
    vals = list(values)
    return sum(vals) / len(vals)


def test_tpm_family_saves_nothing(ctx):
    """Paper: 'the TPM version (ideal or otherwise) does not achieve any
    energy savings' on the original benchmarks."""
    for name in WORKLOAD_NAMES:
        suite = ctx.suite(name)
        for scheme in ("TPM", "ITPM", "CMTPM"):
            assert suite.normalized_energy(scheme) == pytest.approx(1.0, abs=0.01), (
                f"{name}/{scheme}"
            )
            assert suite.normalized_time(scheme) == pytest.approx(1.0, abs=0.01)


def test_reactive_drpm_saves_with_penalty(ctx):
    """Paper: DRPM saves 26 % on average at a 15.9 % average slowdown."""
    energies = [ctx.suite(n).normalized_energy("DRPM") for n in WORKLOAD_NAMES]
    times = [ctx.suite(n).normalized_time("DRPM") for n in WORKLOAD_NAMES]
    assert 0.60 < _mean(energies) < 0.80  # paper: 0.74
    assert 1.08 < _mean(times) < 1.25  # paper: 1.159
    assert all(t > 1.02 for t in times), "every benchmark pays some penalty"


def test_idrpm_halves_energy_without_penalty(ctx):
    """Paper: IDRPM averages 51 % savings with no slowdown."""
    energies = [ctx.suite(n).normalized_energy("IDRPM") for n in WORKLOAD_NAMES]
    assert 0.44 < _mean(energies) < 0.62  # paper: 0.49
    for n in WORKLOAD_NAMES:
        assert ctx.suite(n).normalized_time("IDRPM") == pytest.approx(1.0, abs=0.005)


def test_cmdrpm_close_to_oracle(ctx):
    """Paper: CMDRPM achieves savings 'very close' to IDRPM (46 vs 51 %)
    and 'almost no performance penalty'."""
    for n in WORKLOAD_NAMES:
        suite = ctx.suite(n)
        cm = suite.normalized_energy("CMDRPM")
        oracle = suite.normalized_energy("IDRPM")
        assert cm < 0.75, f"{n}: CMDRPM failed to save"
        assert cm - oracle < 0.12, f"{n}: CMDRPM too far from IDRPM"
        assert suite.normalized_time("CMDRPM") < 1.01
    means = _mean([ctx.suite(n).normalized_energy("CMDRPM") for n in WORKLOAD_NAMES])
    assert 0.48 < means < 0.62  # paper: 0.54


def test_cmdrpm_beats_reactive_drpm_on_both_axes(ctx):
    """Paper §5.1's conclusion: versus reactive DRPM, the compiler-directed
    scheme reduces energy AND eliminates the performance penalty."""
    e_cm = _mean(ctx.suite(n).normalized_energy("CMDRPM") for n in WORKLOAD_NAMES)
    e_re = _mean(ctx.suite(n).normalized_energy("DRPM") for n in WORKLOAD_NAMES)
    t_cm = _mean(ctx.suite(n).normalized_time("CMDRPM") for n in WORKLOAD_NAMES)
    t_re = _mean(ctx.suite(n).normalized_time("DRPM") for n in WORKLOAD_NAMES)
    assert e_cm < e_re
    assert t_cm < t_re - 0.05


def test_table3_mispredictions_modest(ctx):
    """Paper Table 3: 5-27 % mispredicted speeds; 'not very large, which
    explains the success of the compiler-driven scheme'."""
    from repro.experiments.table3 import run as run_table3

    rep = run_table3(ctx)
    for name in WORKLOAD_NAMES:
        measured = rep.value(name, "measured_%")
        assert 0.0 <= measured < 35.0, f"{name}: {measured}"
    avg = _mean(rep.value(n, "measured_%") for n in WORKLOAD_NAMES)
    assert avg < 25.0


def test_energy_accounting_identity(ctx):
    """Cross-cutting invariant: per-scheme, summed state energies equal the
    reported total, and state residencies fill each disk's timeline."""
    for name in ("swim", "galgel"):
        suite = ctx.suite(name)
        for scheme, res in suite.results.items():
            breakdown = res.energy_breakdown_j()
            assert sum(breakdown.values()) == pytest.approx(
                res.total_energy_j, rel=1e-9
            )
            for ds in res.disk_stats:
                assert ds.total_time_s >= res.execution_time_s - 1e-6
