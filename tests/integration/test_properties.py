"""Cross-module property tests over randomly generated programs.

These are the strongest invariants the library offers — each one couples
two independently implemented layers and must hold for *any* valid affine
program the strategy in ``tests/strategies.py`` can produce.
"""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from strategies import perfect_2d_nests, programs  # noqa: E402

from repro.analysis.access import analyze_nest, analyze_program
from repro.analysis.cycles import compute_timing
from repro.analysis.dap import build_dap
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.disksim.timeline import TimelineRecorder
from repro.ir.validate import validate_program
from repro.layout.files import default_layout
from repro.trace.generator import TraceOptions, generate_trace
from repro.util.units import KB

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

OPTS = TraceOptions(
    buffer_cache_bytes=0,  # no cache: every access reaches the disks
    cache_line_bytes=64,
    max_request_bytes=4 * KB,
)


def _pipeline(prog, num_disks=3, stripe=256):
    layout = default_layout(prog.arrays, num_disks=num_disks, stripe_size=stripe)
    trace = generate_trace(prog, layout, OPTS)
    return layout, trace


@settings(**SETTINGS)
@given(programs())
def test_generated_programs_validate(prog):
    """Meta-check: the strategy only produces valid programs."""
    stats = validate_program(prog)
    assert stats.num_statements >= 1


@settings(**SETTINGS)
@given(programs())
def test_trace_requests_within_dap(prog):
    """Every request's disks are a subset of the DAP's active set for the
    request's (nest, iteration) — the compiler's view over-approximates the
    runtime's, never the reverse."""
    layout, trace = _pipeline(prog)
    dap = build_dap(prog, layout)
    ordinals = {
        (n, v): t
        for n, nest in enumerate(prog.nests)
        for t, v in enumerate(nest.iter_values())
    }
    for req in trace.requests:
        disks = layout.striping(req.array).disks_for_extent(req.offset, req.nbytes)
        t = ordinals[(req.nest, req.iteration)]
        active = dap.activity[req.nest][t]
        for d in disks:
            assert active[d], (
                f"request to disk {d} at nest {req.nest} iter {req.iteration} "
                f"not in the DAP"
            )


@settings(**SETTINGS)
@given(programs())
def test_total_bytes_invariant_under_striping(prog):
    """Without a cache, the bytes requested are a property of the program,
    not of the layout: any stripe size / disk count yields the same total."""
    totals = set()
    for num_disks, stripe in ((1, 128), (3, 256), (5, 1024)):
        _, trace = _pipeline(prog, num_disks=num_disks, stripe=stripe)
        totals.add(trace.total_bytes)
    assert len(totals) == 1


@settings(**SETTINGS)
@given(programs())
def test_simulation_energy_identity_and_time(prog):
    """Base replay: per-state energies sum to the total; state residencies
    fill each disk's timeline; execution >= pure compute time."""
    layout, trace = _pipeline(prog)
    params = SubsystemParams(num_disks=3)
    rec = TimelineRecorder()
    res = simulate(trace, params, recorder=rec)
    assert sum(res.energy_breakdown_j().values()) == pytest.approx(
        res.total_energy_j, rel=1e-9
    )
    assert res.execution_time_s >= compute_timing(prog).total_seconds - 1e-12
    rec.verify()
    assert rec.total_energy_j() == pytest.approx(res.total_energy_j, rel=1e-9)


@settings(**SETTINGS)
@given(programs())
def test_simulation_deterministic(prog):
    layout, trace = _pipeline(prog)
    params = SubsystemParams(num_disks=3)
    a = simulate(trace, params)
    b = simulate(trace, params)
    assert a.total_energy_j == b.total_energy_j
    assert a.request_responses == b.request_responses


@settings(**SETTINGS)
@given(programs(max_nests=2))
def test_fission_preserves_footprints_on_random_programs(prog):
    """Fission legality property: per-array whole-program footprints are
    unchanged, statement multiset is preserved, and the result validates."""
    from repro.transform.fission import fission_program

    res = fission_program(prog)
    validate_program(res.program)
    assert len(list(res.program.statements())) == len(list(prog.statements()))

    def footprints(p):
        out = {}
        for n, nest in enumerate(p.nests):
            acc = analyze_nest(nest, n)
            for name in acc.arrays:
                region = acc.total_region(name)
                out.setdefault(name, []).append(region)
        return out

    before, after = footprints(prog), footprints(res.program)
    assert set(before) == set(after)
    for name in before:
        # Union-of-regions equality via element counts and bounding boxes
        # (regions may be re-distributed across more nests after fission).
        bb_before = before[name][0]
        for r in before[name][1:]:
            bb_before = bb_before.bounding_union(r)
        bb_after = after[name][0]
        for r in after[name][1:]:
            bb_after = bb_after.bounding_union(r)
        assert bb_before == bb_after


def _coverage(trace):
    """Per-array set of covered byte intervals (merged).  Coverage is
    invariant under re-indexing; request *counts* are not (miss coalescing
    operates at outer-iteration granularity, so collapsing or splitting
    iterations changes how re-accesses are counted)."""
    by_array: dict[str, list[tuple[int, int]]] = {}
    for r in trace.requests:
        by_array.setdefault(r.array, []).append((r.offset, r.offset + r.nbytes))
    merged = {}
    for name, spans in by_array.items():
        spans.sort()
        out = [list(spans[0])]
        for lo, hi in spans[1:]:
            if lo <= out[-1][1]:
                out[-1][1] = max(out[-1][1], hi)
            else:
                out.append([lo, hi])
        merged[name] = [tuple(x) for x in out]
    return merged


@settings(**SETTINGS)
@given(perfect_2d_nests())
def test_strip_mining_preserves_coverage(prog):
    """Strip-mining is a pure re-indexing: the bytes each array contributes
    to the trace are identical."""
    from repro.transform.stripmine import strip_mine

    nest = prog.nests[0]
    for strip in (2, nest.trip_count):
        if nest.trip_count % strip:
            continue
        mined_prog = prog.with_nest(0, strip_mine(nest, strip))
        validate_program(mined_prog)
        _, t1 = _pipeline(prog)
        _, t2 = _pipeline(mined_prog)
        assert _coverage(t1) == _coverage(t2)


@settings(**SETTINGS)
@given(perfect_2d_nests())
def test_tiling_preserves_coverage_and_validates(prog):
    """Tiling permutes the iteration order: per-array byte coverage and
    footprints survive (request order and re-access counts legitimately
    change)."""
    from repro.transform.tiling import apply_tiling

    layout = default_layout(prog.arrays, num_disks=3, stripe_size=256)
    res = apply_tiling(prog, layout, with_layout=False, bands_per_disk=1)
    if not res.applied:
        return
    validate_program(res.program)
    _, t1 = _pipeline(prog)
    trace2 = generate_trace(res.program, layout, OPTS)
    assert _coverage(t1) == _coverage(trace2)
    before = analyze_program(prog)
    after = analyze_program(res.program)
    for name in prog.referenced_arrays:
        b = next((a.total_region(name) for a in before if a.total_region(name)), None)
        a_ = next((a.total_region(name) for a in after if a.total_region(name)), None)
        assert b == a_


@settings(**SETTINGS)
@given(programs(max_nests=2, max_arrays=2))
def test_oracle_never_slows_or_costs(prog):
    """IDRPM property: for any program, the oracle's replay matches Base
    execution time and never uses more energy."""
    from repro.controllers.oracle import OracleDRPM

    layout, trace = _pipeline(prog)
    params = SubsystemParams(num_disks=3)
    base = simulate(trace, params, collect_busy_intervals=True)
    oracle = simulate(trace, params, OracleDRPM(base, params))
    assert oracle.execution_time_s == pytest.approx(base.execution_time_s, rel=1e-9)
    assert oracle.total_energy_j <= base.total_energy_j + 1e-6
