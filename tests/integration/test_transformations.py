"""Integration: §6.2's transformation results (Figure 13 shapes)."""

import pytest

from repro.experiments.runner import ExperimentContext
from repro.experiments.schemes import run_schemes
from repro.transform.pipeline import make_version


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


def _transformed_energy(ctx, name, version, scheme):
    wl = ctx.workload(name)
    orig = ctx.suite(name)
    lay = ctx.default_layout_for(wl)
    tv = make_version(version, wl.program, lay)
    if not tv.applied:
        return orig.normalized_energy(scheme), False
    suite = run_schemes(
        tv.program,
        tv.layout,
        ctx.params,
        wl.trace_options,
        wl.estimation,
        schemes=("Base", scheme),
    )
    return (
        suite.results[scheme].total_energy_j / orig.base.total_energy_j,
        True,
    )


def test_lf_alone_is_useless(ctx):
    """Layout-oblivious fission barely moves the needle (paper: 'the LF and
    TL versions do not perform well')."""
    e, applied = _transformed_energy(ctx, "swim", "LF", "CMDRPM")
    assert applied
    orig = ctx.suite("swim").normalized_energy("CMDRPM")
    assert abs(e - orig) < 0.08


def test_lfdl_makes_tpm_viable_on_swim(ctx):
    """Paper: 'our code transformations make the TPM strategy a viable
    option... it reduces the energy consumption of the base case by 31%'."""
    e, applied = _transformed_energy(ctx, "swim", "LF+DL", "CMTPM")
    assert applied
    assert e < 0.75  # CMTPM goes from 1.00 to deep savings
    assert ctx.suite("swim").normalized_energy("CMTPM") == pytest.approx(1.0, abs=0.01)


def test_lfdl_improves_cmdrpm_on_fissionable_benchmarks(ctx):
    for name in ("swim", "mgrid", "applu", "mesa"):
        e, applied = _transformed_energy(ctx, name, "LF+DL", "CMDRPM")
        assert applied, name
        assert e < ctx.suite(name).normalized_energy("CMDRPM") + 1e-6, name


def test_tldl_improves_wupwise(ctx):
    """wupwise has no fissionable nests but benefits from TL+DL (the
    non-conforming ZP access is layout-transformed)."""
    lf, applied_lf = _transformed_energy(ctx, "wupwise", "LF+DL", "CMDRPM")
    assert not applied_lf
    tl, applied_tl = _transformed_energy(ctx, "wupwise", "TL+DL", "CMDRPM")
    assert applied_tl
    assert tl < ctx.suite("wupwise").normalized_energy("CMDRPM") - 0.02


def test_galgel_gains_nothing(ctx):
    """The paper's negative control."""
    for version in ("LF", "TL", "LF+DL", "TL+DL"):
        _, applied = _transformed_energy(ctx, "galgel", version, "CMDRPM")
        assert not applied


def test_transformed_average_cmtpm_savings(ctx):
    """Across the benchmarks where a +DL version applies, CMTPM averages
    deep savings (paper: 31 %)."""
    energies = []
    for name, version in (
        ("swim", "LF+DL"),
        ("mgrid", "LF+DL"),
        ("applu", "LF+DL"),
        ("mesa", "LF+DL"),
        ("wupwise", "TL+DL"),
    ):
        e, applied = _transformed_energy(ctx, name, version, "CMTPM")
        assert applied, name
        energies.append(e)
    avg = sum(energies) / len(energies)
    assert 0.5 < avg < 0.85  # paper: 0.69
