"""End-to-end pipeline sanity on a small program, plus sweep shapes."""

import pytest

from repro.experiments.fig5_6 import run as run_fig5_6
from repro.experiments.fig7_8 import run as run_fig7_8
from repro.experiments.runner import ExperimentContext
from repro.experiments.table1 import run as run_table1
from repro.experiments.table2 import run as run_table2
from repro.util.units import KB


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


def test_table1_reflects_live_parameters(ctx):
    rep = run_table1(ctx.params)
    assert rep.value("RPM", "value") == 15000.0
    assert rep.value("Power idle (W)", "value") == 10.2
    assert rep.value("Stripe factor (disks)", "value") == 8.0


def test_table2_reports_all_benchmarks(ctx):
    rep = run_table2(ctx)
    assert set(rep.rows) == {
        "wupwise", "swim", "mgrid", "applu", "mesa", "galgel",
    }
    for name in rep.rows:
        measured_mb = rep.value(name, "MB")
        paper_mb = rep.value(name, "MB(p)")
        assert measured_mb == pytest.approx(paper_mb, rel=0.03)


def test_stripe_size_sweep_shapes(ctx):
    """Fig 5/6: CMDRPM consistent and penalty-free across stripe sizes;
    DRPM's slowdown grows from the default toward large stripes."""
    energy, time = run_fig5_6(ctx, stripe_sizes=(32 * KB, 64 * KB, 256 * KB))
    for row in energy.rows:
        assert energy.value(row, "CMDRPM") < 0.8
        assert time.value(row, "CMDRPM") == pytest.approx(1.0, abs=0.01)
        assert energy.value(row, "TPM") == pytest.approx(1.0, abs=0.01)
    assert time.value("256KB", "DRPM") > time.value("64KB", "DRPM")


def test_stripe_factor_sweep_shapes(ctx):
    """Fig 7/8: CMDRPM's savings grow with the disk count and track IDRPM."""
    energy, time = run_fig7_8(ctx, factors=(2, 8, 16))
    assert energy.value("16 disks", "CMDRPM") < energy.value("2 disks", "CMDRPM")
    for row in energy.rows:
        gap = energy.value(row, "CMDRPM") - energy.value(row, "IDRPM")
        assert gap < 0.20
        assert time.value(row, "CMDRPM") == pytest.approx(1.0, abs=0.01)


def test_cli_runs_selected_experiments(capsys):
    from repro.experiments.cli import main

    rc = main(["table1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IBM Ultrastar 36Z15" in out
    with pytest.raises(SystemExit):
        main(["nonsense"])
