"""bench_history: snapshot appends, platform-scoped regression flags."""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
import bench_history  # noqa: E402


REPORT = {
    "schema": 1,
    "bench": "demo",
    "machine": {"platform": "x", "python": "3"},
    "optimized": {"timings_s": {"all_suites": 1.0, "sweeps": 2.0}},
    "speedup_auto": 2.0,
    "counts": {"requests": 100},
}


def _write(tmp_path, report, name="BENCH_demo.json"):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return path


def test_flatten_skips_metadata_and_keeps_numeric_leaves():
    flat = bench_history.flatten_metrics(REPORT)
    assert flat == {
        "optimized.timings_s.all_suites": 1.0,
        "optimized.timings_s.sweeps": 2.0,
        "speedup_auto": 2.0,
        "counts.requests": 100.0,
    }
    assert "schema" not in flat and not any(
        k.startswith("machine") for k in flat
    )


def test_direction_inference():
    assert bench_history.metric_direction("speedup_auto") == 1
    assert bench_history.metric_direction("throughput_mreq") == 1
    assert bench_history.metric_direction("optimized.timings_s.all") == -1
    assert bench_history.metric_direction("obs.overhead") == -1
    assert bench_history.metric_direction("counts.requests") == 0


def test_record_appends_and_flags_regressions(tmp_path):
    hist = tmp_path / "hist.jsonl"
    bench = _write(tmp_path, REPORT)
    assert bench_history.record(bench, hist, now=1.0) == []

    worse = json.loads(json.dumps(REPORT))
    worse["optimized"]["timings_s"]["all_suites"] = 1.2  # +20% slower
    worse["speedup_auto"] = 1.5  # -25% speedup
    worse["counts"]["requests"] = 999  # directionless: never flagged
    _write(tmp_path, worse)
    flags = bench_history.record(bench, hist, now=2.0)
    assert len(flags) == 2
    assert any("all_suites" in f and "lower is better" in f for f in flags)
    assert any("speedup_auto" in f and "higher is better" in f for f in flags)

    records = [json.loads(l) for l in hist.read_text().splitlines()]
    assert len(records) == 2
    assert "regressions" not in records[0]
    assert records[1]["regressions"] == flags
    assert records[1]["recorded_unix"] == 2.0


def test_improvements_and_small_moves_not_flagged(tmp_path):
    hist = tmp_path / "hist.jsonl"
    bench = _write(tmp_path, REPORT)
    bench_history.record(bench, hist, now=1.0)
    better = json.loads(json.dumps(REPORT))
    better["optimized"]["timings_s"]["all_suites"] = 0.5  # faster: fine
    better["optimized"]["timings_s"]["sweeps"] = 2.1  # +5%: under threshold
    better["speedup_auto"] = 4.0  # higher: fine
    _write(tmp_path, better)
    assert bench_history.record(bench, hist, now=2.0) == []


def test_comparison_scoped_to_same_bench_and_platform(tmp_path):
    hist = tmp_path / "hist.jsonl"
    other = json.loads(json.dumps(REPORT))
    other["optimized"]["timings_s"]["all_suites"] = 0.1
    bench_a = _write(tmp_path, other, "BENCH_a.json")
    bench_history.record(bench_a, hist, now=1.0)

    # A much-slower number under a *different* bench name is not compared
    # against BENCH_a's history.
    bench_b = _write(tmp_path, REPORT, "BENCH_b.json")
    assert bench_history.record(bench_b, hist, now=2.0) == []


def test_cli_check_mode(tmp_path, capsys):
    hist = tmp_path / "hist.jsonl"
    bench = _write(tmp_path, REPORT)
    assert bench_history.main([str(bench), "--history", str(hist)]) == 0
    worse = json.loads(json.dumps(REPORT))
    worse["optimized"]["timings_s"]["all_suites"] = 5.0
    _write(tmp_path, worse)
    assert (
        bench_history.main([str(bench), "--history", str(hist), "--check"])
        == 1
    )
    out = capsys.readouterr().out
    assert "REGRESSION" in out
