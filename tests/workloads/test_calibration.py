"""Calibration of the benchmark models against the paper's Table 2.

These run full Base simulations per benchmark (seconds each), checking the
absolute anchors: request counts, base energy, base execution time.
Tolerances are loose (the substrate is a model, not the authors' machine);
the *normalized* results are validated in tests/integration.
"""

import pytest

from repro.experiments.schemes import run_workload
from repro.workloads.registry import WORKLOAD_NAMES, build_workload

TOLERANCES = {
    "reqs": 0.13,
    "energy": 0.12,
    "time": 0.12,
}


@pytest.fixture(scope="module")
def base_results():
    out = {}
    for name in WORKLOAD_NAMES:
        wl = build_workload(name)
        suite = run_workload(wl, schemes=("Base",))
        out[name] = (wl, suite.base)
    return out


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_request_counts_near_table2(base_results, name):
    wl, base = base_results[name]
    assert base.num_requests == pytest.approx(
        wl.paper.num_disk_requests, rel=TOLERANCES["reqs"]
    )


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_base_energy_near_table2(base_results, name):
    wl, base = base_results[name]
    assert base.total_energy_j == pytest.approx(
        wl.paper.base_energy_j, rel=TOLERANCES["energy"]
    )


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_base_time_near_table2(base_results, name):
    wl, base = base_results[name]
    assert base.execution_time_s * 1000 == pytest.approx(
        wl.paper.base_time_ms, rel=TOLERANCES["time"]
    )


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_base_power_is_idle_dominated(base_results, name):
    """Table 2 implies ~84 W average subsystem power (8 disks mostly idle)."""
    _, base = base_results[name]
    avg_w = base.total_energy_j / base.execution_time_s
    assert 81.0 < avg_w < 90.0
