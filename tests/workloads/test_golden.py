"""Golden regression pins for the benchmark models.

These freeze deterministic facts of the current models — exact request
counts, DAP structure, nest inventories — so an accidental change to a
workload or to the trace generator shows up as a diff here rather than as
a silent drift in the reproduced figures.  If you change a model on
purpose, update the pins and re-run ``pytest benchmarks/`` to re-validate
the paper shapes.
"""

import pytest

from repro.analysis.dap import build_dap
from repro.layout.files import default_layout
from repro.trace.generator import generate_trace
from repro.workloads.registry import build_workload

GOLDEN_REQUESTS = {
    # paper Table 2:  24718   3159   12288   7004   3072   2048
    "wupwise": 24640,
    "swim": 3136,
    "mgrid": 12288,  # exact match with the paper
    "applu": 7104,
    "mesa": 3136,
    "galgel": 2112,
}

GOLDEN_NESTS = {
    "wupwise": 20,
    "swim": 7,
    "mgrid": 19,
    "applu": 9,
    "mesa": 5,
    "galgel": 5,
}


@pytest.mark.parametrize("name", sorted(GOLDEN_REQUESTS))
def test_request_counts_pinned(name):
    wl = build_workload(name)
    lay = default_layout(wl.program.arrays, num_disks=8)
    trace = generate_trace(wl.program, lay, wl.trace_options)
    assert trace.num_requests == GOLDEN_REQUESTS[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_NESTS))
def test_nest_counts_pinned(name):
    wl = build_workload(name)
    assert len(wl.program.nests) == GOLDEN_NESTS[name]


def test_swim_dap_structure_pinned():
    """swim's calc1 touches all 8 disks from iteration 0; disk 0's first
    entry is paper-format 'active at nest 0 iteration 0'."""
    wl = build_workload("swim")
    lay = default_layout(wl.program.arrays, num_disks=8)
    dap = build_dap(wl.program, lay, cached_threshold_bytes=1024)
    first = dap.entries(0)[0]
    assert str(first) == "< Nest 0, iteration 0, active >"
    assert all(dap.ever_active(d) for d in range(8))


def test_wupwise_zgemm_touches_all_disks_every_iteration():
    """The non-conforming ZP walk: every outer iteration of the zgemm nest
    activates all 8 disks (stride 9 is coprime to the stripe rotation) —
    the structural fact TL+DL exists to fix."""
    import numpy as np

    from repro.analysis.access import analyze_nest

    wl = build_workload("wupwise")
    lay = default_layout(wl.program.arrays, num_disks=8)
    zg_idx = next(
        i for i, nest in enumerate(wl.program.nests) if nest.var == "zg_cb"
    )
    mat = analyze_nest(wl.program.nests[zg_idx], zg_idx).active_disk_matrix(lay)
    assert mat.all()


def test_traces_are_bitwise_deterministic():
    wl = build_workload("galgel")
    lay = default_layout(wl.program.arrays, num_disks=8)
    t1 = generate_trace(wl.program, lay, wl.trace_options)
    t2 = generate_trace(wl.program, lay, wl.trace_options)
    assert [
        (r.nominal_time_s, r.array, r.offset, r.nbytes) for r in t1.requests
    ] == [(r.nominal_time_s, r.array, r.offset, r.nbytes) for r in t2.requests]
