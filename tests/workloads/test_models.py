"""Benchmark model structure: Table 2 characteristics and §6.2 traits."""

import pytest

from repro.ir.validate import validate_program
from repro.layout.files import default_layout
from repro.transform.fission import fission_program
from repro.transform.grouping import array_groups
from repro.transform.tiling import apply_tiling
from repro.workloads.registry import WORKLOAD_NAMES, all_workloads, build_workload


def test_registry_names_and_order():
    assert WORKLOAD_NAMES == ("wupwise", "swim", "mgrid", "applu", "mesa", "galgel")
    with pytest.raises(KeyError):
        build_workload("gcc")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_models_validate(name):
    wl = build_workload(name)
    stats = validate_program(wl.program)
    assert stats.num_statements > 0
    assert wl.program.name == name


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_data_sizes_match_table2(name):
    """Dataset size within 3 % of the paper's Table 2 value."""
    wl = build_workload(name)
    assert wl.data_size_mb == pytest.approx(wl.paper.data_size_mb, rel=0.03)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_fissionability_matches_section_6_2(name):
    wl = build_workload(name)
    res = fission_program(wl.program)
    assert res.any_applied == wl.paper.fissionable, (
        f"{name}: expected fissionable={wl.paper.fissionable}"
    )


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_tileability_matches_section_6_2(name):
    wl = build_workload(name)
    lay = default_layout(wl.program.arrays, num_disks=8)
    res = apply_tiling(wl.program, lay, with_layout=True)
    assert res.applied == wl.paper.tiling_benefits, (
        f"{name}: expected tiling applicability={wl.paper.tiling_benefits}"
    )


def test_wupwise_single_statement_nests_not_fissionable():
    wl = build_workload("wupwise")
    groups = array_groups(wl.program)
    # Many groups exist (one per gauge matrix), but no single nest mixes two.
    assert len(groups) > 1


def test_galgel_single_group():
    wl = build_workload("galgel")
    groups = array_groups(wl.program)
    disk_groups = [g for g in groups if any(
        not wl.program.array(n).memory_resident for n in g.arrays
    )]
    assert len(disk_groups) == 1
    assert disk_groups[0].arrays >= {"G1", "G2"}


def test_scratch_arrays_are_memory_resident():
    for wl in all_workloads():
        scratch = [a for a in wl.program.arrays if a.memory_resident]
        assert scratch, f"{wl.name} has no in-memory working set"
        assert all(a.size_bytes < 1024 * 1024 for a in scratch)


def test_estimation_errors_are_per_benchmark():
    errs = {wl.name: wl.estimation.relative_error for wl in all_workloads()}
    assert len(set(errs.values())) > 1
    assert all(0 <= e < 0.5 for e in errs.values())
