"""Hypothesis strategies generating random *valid* IR programs.

The generator builds small affine programs bottom-up: loop shapes first,
then references whose subscripts are guaranteed in-bounds by construction
(array extents are derived from the maximum value each subscript can take).
Every generated program passes :func:`repro.ir.validate.validate_program`,
which the cross-module property tests assert as a meta-check.

Kept deliberately small (tens of iterations, tiny arrays) so whole
pipelines — analysis, trace generation, simulation, transformation — run in
milliseconds per example.

Also here: :func:`fault_rates` / :func:`fault_configs`, random (but valid
and runtime-bounded) :mod:`repro.faults` regimes for the fault-equivalence
property tests, and :func:`boundary_adjacent_traces`, synthetic traces
whose directives hug the replay's boundary instants (service completions
and transition edges) — the adversarial inputs for the segmented engine's
directive-as-boundary-edit mirror.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import strategies as st

from repro.disksim.params import SubsystemParams
from repro.faults import FaultConfig, FaultRates
from repro.ir.arrays import Array, StorageOrder
from repro.ir.expr import Affine, var
from repro.ir.nodes import AccessMode, ArrayRef, Loop, PowerAction, PowerCall, Statement
from repro.ir.program import Program
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import DirectiveRecord, IORequest, Trace
from repro.util.units import KB

__all__ = [
    "programs",
    "perfect_2d_nests",
    "fault_rates",
    "fault_configs",
    "boundary_adjacent_traces",
    "ingest_records",
    "synth_configs",
]


@dataclass
class _RefSpec:
    """A reference shape: per-dim (outer coeff, inner coeff, constant)."""

    dims: tuple[tuple[int, int, int], ...]
    mode: AccessMode


def _extent_needed(spec_dim: tuple[int, int, int], t_outer: int, t_inner: int) -> int:
    co, ci, k = spec_dim
    return co * (t_outer - 1) + ci * (t_inner - 1) + k + 1


@st.composite
def programs(
    draw,
    max_nests: int = 3,
    max_arrays: int = 3,
    max_stmts_per_nest: int = 2,
    element_size: int = 8,
):
    """A random valid :class:`Program` over 2-D arrays.

    Each nest is ``for i { for j { statements } }`` with trips 2-12; each
    statement references 1-2 arrays with affine subscripts whose
    coefficients are drawn from {0, 1} (plus small constants).  Array
    extents are computed as the max requirement over every reference, so
    validation holds by construction.
    """
    n_arrays = draw(st.integers(1, max_arrays))
    n_nests = draw(st.integers(1, max_nests))

    # Reference specs per (nest, statement); arrays identified by index.
    nest_shapes: list[tuple[int, int]] = []
    all_refs: list[list[list[tuple[int, _RefSpec]]]] = []
    req0: dict[int, int] = {}
    req1: dict[int, int] = {}
    for _ in range(n_nests):
        t_outer = draw(st.integers(2, 12))
        t_inner = draw(st.integers(2, 12))
        nest_shapes.append((t_outer, t_inner))
        stmts: list[list[tuple[int, _RefSpec]]] = []
        for _ in range(draw(st.integers(1, max_stmts_per_nest))):
            refs: list[tuple[int, _RefSpec]] = []
            for _ in range(draw(st.integers(1, 2))):
                arr_idx = draw(st.integers(0, n_arrays - 1))
                # Separable references only (each loop variable indexes at
                # most one dimension) — the class the paper's benchmarks
                # use and for which rectangular footprints are exact at
                # every re-indexing granularity.  A diagonal like A[i][i]
                # is exact per-iteration but not under strip-mining.
                assignment = draw(
                    st.sampled_from(
                        [
                            ("i", "j"), ("j", "i"), ("i", None), ("j", None),
                            (None, "i"), (None, "j"), (None, None),
                        ]
                    )
                )
                dims = tuple(
                    (
                        1 if which == "i" else 0,
                        1 if which == "j" else 0,
                        draw(st.integers(0, 3)),
                    )
                    for which in assignment
                )
                mode = draw(st.sampled_from([AccessMode.READ, AccessMode.WRITE]))
                spec = _RefSpec(dims=dims, mode=mode)
                refs.append((arr_idx, spec))
                need0 = _extent_needed(dims[0], t_outer, t_inner)
                need1 = _extent_needed(dims[1], t_outer, t_inner)
                req0[arr_idx] = max(req0.get(arr_idx, 1), need0)
                req1[arr_idx] = max(req1.get(arr_idx, 1), need1)
            stmts.append(refs)
        all_refs.append(stmts)

    arrays = []
    for idx in range(n_arrays):
        order = draw(
            st.sampled_from([StorageOrder.ROW_MAJOR, StorageOrder.COLUMN_MAJOR])
        )
        arrays.append(
            Array(
                f"A{idx}",
                (req0.get(idx, 2), req1.get(idx, 2)),
                element_size=element_size,
                order=order,
            )
        )

    nests = []
    for n, ((t_outer, t_inner), stmts) in enumerate(zip(nest_shapes, all_refs)):
        iv, jv = f"i{n}", f"j{n}"
        body_stmts = []
        for refs in stmts:
            ir_refs = []
            for arr_idx, spec in refs:
                subs = []
                for co, ci, k in spec.dims:
                    subs.append(var(iv) * co + var(jv) * ci + Affine.const(k))
                ir_refs.append(ArrayRef(arrays[arr_idx], tuple(subs), spec.mode))
            cycles = draw(st.floats(0.0, 1e4))
            body_stmts.append(Statement(tuple(ir_refs), cost_cycles=cycles))
        inner = Loop(jv, 0, t_inner, tuple(body_stmts))
        nests.append(Loop(iv, 0, t_outer, (inner,)))

    return Program(
        name="hypo", arrays=tuple(arrays), nests=tuple(nests), clock_hz=1e6
    )


def _prob(hi: float = 1.0):
    """A probability in [0, hi] biased toward the interesting corners."""
    return st.one_of(
        st.just(0.0),
        st.just(hi),
        st.floats(0.0, hi, allow_nan=False, allow_infinity=False),
    )


@st.composite
def fault_rates(draw, allow_null: bool = True):
    """A random valid :class:`repro.faults.FaultRates`.

    Bounds are chosen so any regime stays cheap to replay: jitter and
    deadline slips of a few seconds, short retry chains, sub-request error
    rates capped well below 1 (every sub-request erroring multiplies the
    stepwise serve count by the retry bound).
    """
    rates = FaultRates(
        spinup_jitter_p=draw(_prob()),
        spinup_jitter_max_s=draw(st.floats(0.0, 3.0, allow_nan=False)),
        spinup_fail_p=draw(_prob()),
        spinup_max_retries=draw(st.integers(0, 4)),
        request_error_p=draw(_prob(0.2)),
        request_max_retries=draw(st.integers(1, 4)),
        request_backoff_s=draw(st.floats(0.0, 0.05, allow_nan=False)),
        request_timeout_s=draw(st.floats(0.001, 2.0, allow_nan=False)),
        deadline_miss_p=draw(_prob()),
        deadline_miss_max_s=draw(st.floats(0.0, 5.0, allow_nan=False)),
    )
    if not allow_null and rates.is_null:
        rates = FaultRates(
            spinup_jitter_p=1.0,
            spinup_jitter_max_s=max(rates.spinup_jitter_max_s, 0.1),
            deadline_miss_p=rates.deadline_miss_p,
            request_error_p=rates.request_error_p,
        )
    return rates


@st.composite
def fault_configs(draw, allow_null: bool = True):
    """A random :class:`repro.faults.FaultConfig` (seed + rates)."""
    return FaultConfig(
        seed=draw(st.integers(0, 2**31 - 1)),
        rates=draw(fault_rates(allow_null=allow_null)),
    )


@st.composite
def boundary_adjacent_traces(draw):
    """A ``(trace, params)`` pair whose directives hug boundary instants.

    The replay model is blocking (``t_exec = nominal + delay``), so a
    directive whose nominal time is epsilon after request *i*'s nominal
    time executes exactly at that request's last-sub completion edge on
    the realized timeline, and a tie (epsilon = 0) executes first, on the
    issue edge.  Transition edges are hit by chaining a second call at the
    first call's transition-end instant (spin-down settle, per-step RPM
    modulation): epsilon before lands entangled with the in-flight
    transition, epsilon after lands on the freshly settled state.

    Disks are partitioned into TPM-mode (spin_down/spin_up only) and
    DRPM-mode (set_RPM only) so every generated sequence is valid —
    ``set_RPM`` on a spun-down disk is a :class:`SimulationError` by
    contract, not an equivalence case.
    """
    num_disks = draw(st.sampled_from([1, 4]))
    n = draw(st.integers(16, 40))
    gaps = draw(
        st.lists(
            st.sampled_from([0.002, 0.05, 0.6, 2.0]), min_size=n, max_size=n
        )
    )
    times = []
    t = 0.0
    for g in gaps:
        times.append(t)
        t += g
    sizes = draw(
        st.lists(st.sampled_from([8 * KB, 192 * KB]), min_size=n, max_size=n)
    )
    layout = SubsystemLayout(
        num_disks=num_disks,
        entries=(
            FileEntry("A", 4096 * KB, Striping(0, num_disks, 64 * KB), 0),
        ),
    )
    reqs = tuple(
        IORequest(times[i], "A", (i % 16) * 64 * KB, sizes[i], i % 3 == 0)
        for i in range(n)
    )
    params = SubsystemParams(num_disks=num_disks)
    modes = tuple(
        draw(st.sampled_from(["tpm", "drpm"])) for _ in range(num_disks)
    )
    levels = params.drpm.levels
    down_s = params.disk.spin_down_time_s
    step_s = params.drpm.transition_time_per_step_s
    issue_eps = st.sampled_from([0.0, 1e-9, 1e-6, 1e-3])
    edge_eps = st.sampled_from([-1e-9, 0.0, 1e-9, 1e-3])
    records = []
    for _ in range(draw(st.integers(2, 8))):
        i = draw(st.integers(0, n - 1))
        disk = draw(st.integers(0, num_disks - 1))
        t0 = times[i] + draw(issue_eps)
        overhead = draw(st.sampled_from([0.0, 5000.0]))
        if modes[disk] == "tpm":
            first = draw(
                st.sampled_from([PowerAction.SPIN_DOWN, PowerAction.SPIN_UP])
            )
            records.append(
                DirectiveRecord(
                    t0, PowerCall(first, disk, overhead_cycles=overhead)
                )
            )
            if first is PowerAction.SPIN_DOWN and draw(st.booleans()):
                t1 = t0 + down_s + draw(edge_eps)
                records.append(
                    DirectiveRecord(t1, PowerCall(PowerAction.SPIN_UP, disk))
                )
        else:
            rpm = draw(st.sampled_from(levels))
            records.append(
                DirectiveRecord(
                    t0,
                    PowerCall(
                        PowerAction.SET_RPM, disk, rpm=rpm,
                        overhead_cycles=overhead,
                    ),
                )
            )
            if draw(st.booleans()):
                steps = params.drpm.steps_between(params.drpm.max_rpm, rpm)
                t1 = t0 + steps * step_s + draw(edge_eps)
                rpm2 = draw(st.sampled_from(levels))
                records.append(
                    DirectiveRecord(
                        t1, PowerCall(PowerAction.SET_RPM, disk, rpm=rpm2)
                    )
                )
    records.sort(key=lambda d: d.nominal_time_s)
    end = times[-1] + down_s + params.disk.spin_up_time_s + 5.0
    trace = Trace("adjacency", layout, reqs, tuple(records), end)
    return trace, params


#: Device-id sets for :func:`ingest_records`.  The sparse sets leave holes
#: in the device range ((2, 5) doesn't even include device 0), so the
#: mapping policies and geometry inference see real device gaps.
_DEVICE_SETS = ((0,), (0, 1, 2, 3), (0, 3, 7), (2, 5))


@st.composite
def ingest_records(draw, min_size: int = 1, max_size: int = 60, ordered: bool = True):
    """Random *valid* ingest records ``(arrival_s, device, lba, nbytes,
    is_write)`` for :mod:`repro.trace.ingest`.

    Arrivals are nonnegative finite floats built from accumulated gaps
    (ties included — gap 0 draws are legal); devices come from a sparse
    set so inferred geometry has gaps; sizes span single bytes to large
    multi-stripe requests.  ``ordered=False`` shuffles the arrivals,
    producing the out-of-order inputs the ``sort=``/strictness tests
    need — every record stays individually valid.
    """
    n = draw(st.integers(min_size, max_size))
    devices = draw(st.sampled_from(_DEVICE_SETS))
    gaps = draw(
        st.lists(
            st.one_of(st.just(0.0), st.floats(0.0, 2.0, allow_nan=False)),
            min_size=n,
            max_size=n,
        )
    )
    t = 0.0
    records = []
    for g in gaps:
        t += g
        records.append(
            (
                t,
                draw(st.sampled_from(devices)),
                draw(st.integers(0, 1 << 20)),
                draw(st.sampled_from([1, 512, 4096, 8192, 65536])),
                draw(st.booleans()),
            )
        )
    if not ordered and n > 1:
        records = draw(st.permutations(records))
    return records


@st.composite
def synth_configs(draw, max_requests: int = 2000):
    """A random valid :class:`repro.trace.synth.SynthConfig`, small enough
    to materialize whole in differential tests."""
    from repro.trace.synth import SynthConfig

    return SynthConfig(
        num_requests=draw(st.integers(1, max_requests)),
        num_disks=draw(st.sampled_from([1, 4])),
        model=draw(st.sampled_from(["poisson", "onoff", "pareto"])),
        rate_hz=draw(st.sampled_from([200.0, 2000.0, 20000.0])),
        burst_len=draw(st.floats(1.0, 64.0, allow_nan=False)),
        off_s=draw(st.floats(0.0, 0.5, allow_nan=False)),
        pareto_alpha=draw(st.floats(1.1, 3.0, allow_nan=False)),
        read_fraction=draw(st.floats(0.0, 1.0, allow_nan=False)),
        lba_skew=draw(st.sampled_from([0.0, 0.5, 0.9])),
        request_bytes=draw(st.sampled_from([4 * KB, 8 * KB])),
        seed=draw(st.integers(0, 2**31 - 1)),
        chunk_requests=draw(st.sampled_from([1, 17, 256, 65536])),
    )


@st.composite
def perfect_2d_nests(draw, min_trip: int = 4, max_trip: int = 16):
    """A single-nest program whose nest is a perfect 2-deep candidate for
    tiling/strip-mining (trip counts with small divisors)."""
    prog = draw(
        programs(max_nests=1, max_arrays=2, max_stmts_per_nest=2)
    )
    nest = prog.nests[0]
    inner = nest.body[0]
    # Force even trip counts so strip/tile sizes exist.
    t_outer = draw(st.sampled_from([4, 6, 8, 12, 16]))
    t_inner = draw(st.sampled_from([4, 6, 8, 12, 16]))
    new_inner = Loop(inner.var, 0, t_inner, inner.body)
    new_nest = Loop(nest.var, 0, t_outer, (new_inner,))
    prog = prog.with_nests((new_nest,))
    # Grow the arrays so the (possibly larger) trip counts stay in bounds;
    # with_arrays re-points every reference at the grown declarations.
    grown = {
        a.name: Array(
            a.name,
            (a.shape[0] + t_outer + t_inner, a.shape[1] + t_outer + t_inner),
            a.element_size,
            a.order,
        )
        for a in prog.arrays
    }
    return prog.with_arrays(grown)
