"""File map / subsystem layout."""

import pytest

from repro.ir.arrays import Array
from repro.layout.files import FileEntry, SubsystemLayout, default_layout
from repro.layout.striping import Striping
from repro.util.errors import LayoutError
from repro.util.units import KB, SECTOR_BYTES

ARRS = (Array("A", (8192,)), Array("B", (16384,)))  # 64 KB and 128 KB


def test_default_layout_packs_files():
    lay = default_layout(ARRS, num_disks=4)
    a, b = lay.entry("A"), lay.entry("B")
    assert a.base_block == 0
    assert b.base_block == a.num_blocks
    assert a.striping.as_tuple() == (0, 4, 64 * KB)
    assert lay.layout_tuple("B") == (0, 4, 64 * KB)


def test_blocks_round_trip():
    lay = default_layout(ARRS, num_disks=4)
    e = lay.entry("B")
    for off in (0, SECTOR_BYTES, e.size_bytes - 1):
        block = e.offset_to_block(off)
        assert e.block_to_offset(block) == (off // SECTOR_BYTES) * SECTOR_BYTES
    with pytest.raises(LayoutError):
        e.offset_to_block(e.size_bytes)
    with pytest.raises(LayoutError):
        e.block_to_offset(e.base_block - 1)


def test_resolve_block():
    lay = default_layout(ARRS, num_disks=4)
    b = lay.entry("B")
    assert lay.resolve_block(b.base_block).array_name == "B"
    assert lay.resolve_block(0).array_name == "A"
    with pytest.raises(LayoutError):
        lay.resolve_block(b.block_range[1])


def test_striping_must_fit_subsystem():
    entry = FileEntry("A", 1024, Striping(3, 4, 512), 0)
    with pytest.raises(LayoutError, match="subsystem has"):
        SubsystemLayout(num_disks=4, entries=(entry,))


def test_overlapping_block_ranges_rejected():
    e1 = FileEntry("A", 1024, Striping(0, 2, 512), 0)
    e2 = FileEntry("B", 1024, Striping(0, 2, 512), 1)  # overlaps A's 2 blocks
    with pytest.raises(LayoutError, match="overlaps"):
        SubsystemLayout(num_disks=2, entries=(e1, e2))


def test_duplicate_file_rejected():
    e1 = FileEntry("A", 1024, Striping(0, 2, 512), 0)
    e2 = FileEntry("A", 1024, Striping(0, 2, 512), 10)
    with pytest.raises(LayoutError, match="duplicate"):
        SubsystemLayout(num_disks=2, entries=(e1, e2))


def test_split_request_bounds_checked():
    lay = default_layout(ARRS, num_disks=4)
    with pytest.raises(LayoutError, match="exceeds"):
        lay.split_request("A", 0, ARRS[0].size_bytes + 1)
    subs = lay.split_request("A", 0, 1024)
    assert sum(x.length for x in subs) == 1024


def test_with_striping_preserves_blocks():
    lay = default_layout(ARRS, num_disks=4)
    new = lay.with_striping({"A": Striping(2, 2, 32 * KB)})
    assert new.layout_tuple("A") == (2, 2, 32 * KB)
    assert new.layout_tuple("B") == (0, 4, 64 * KB)
    assert new.entry("A").base_block == lay.entry("A").base_block


def test_with_file_sizes_repacks():
    lay = default_layout(ARRS, num_disks=4)
    new = lay.with_file_sizes({"A": 128 * KB})
    assert new.entry("A").size_bytes == 128 * KB
    assert new.entry("B").base_block == new.entry("A").num_blocks


def test_unknown_array_raises():
    lay = default_layout(ARRS, num_disks=4)
    with pytest.raises(LayoutError):
        lay.entry("missing")


def test_default_layout_custom_stripe():
    lay = default_layout(ARRS, num_disks=8, stripe_size=16 * KB, stripe_factor=2,
                         starting_disk=3)
    assert lay.layout_tuple("A") == (3, 2, 16 * KB)
    assert lay.disks_of_array("A") == (3, 4)
