"""Striping math: the (starting disk, stripe factor, stripe size) 3-tuple."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.layout.striping import Striping
from repro.util.errors import LayoutError
from repro.util.units import KB


def test_paper_figure2_example():
    """Figure 2(b): U1 striped over all four disks as (0, 4, S)."""
    S = 64 * KB
    s = Striping(0, 4, S)
    assert s.as_tuple() == (0, 4, S)
    assert s.disks == (0, 1, 2, 3)
    # First 2S bytes (the first loop nest's U1 accesses) hit disks 0 and 1.
    assert s.disks_for_extent(0, 2 * S) == {0, 1}
    # The third stripe (U2's accessed region in the example) is disk 2.
    assert s.disks_for_extent(2 * S, S) == {2}


def test_validation():
    with pytest.raises(LayoutError):
        Striping(-1, 4, 1024)
    with pytest.raises(LayoutError):
        Striping(0, 0, 1024)
    with pytest.raises(LayoutError):
        Striping(0, 4, 0)


def test_disk_of_offset_round_robin():
    s = Striping(2, 3, 100)
    assert s.disk_of_offset(0) == 2
    assert s.disk_of_offset(100) == 3
    assert s.disk_of_offset(200) == 4
    assert s.disk_of_offset(300) == 2
    assert s.disk_of_offset(99) == 2


def test_disk_offset_of():
    s = Striping(0, 4, 100)
    # Stripe 5 lives on disk 1, slot 1 of that disk.
    assert s.disk_offset_of(510) == 1 * 100 + 10


def test_disks_for_extent_empty_and_wide():
    s = Striping(0, 4, 100)
    assert s.disks_for_extent(0, 0) == frozenset()
    assert s.disks_for_extent(50, 400) == {0, 1, 2, 3}
    with pytest.raises(LayoutError):
        s.disks_for_extent(-1, 10)


def test_split_extent_structure():
    s = Striping(1, 2, 100)
    subs = s.split_extent(150, 200)  # bytes [150, 350): stripes 1,2,3
    assert [x.disk for x in subs] == [2, 1, 2]
    assert [x.length for x in subs] == [50, 100, 50]
    assert [x.file_offset for x in subs] == [150, 200, 300]
    assert subs[0].disk_offset == 0 * 100 + 50
    assert subs[1].disk_offset == 1 * 100 + 0


def test_per_disk_bytes_simple():
    s = Striping(0, 4, 100)
    out = s.per_disk_bytes(50, 400)
    # [50, 450): stripe 0 tail (50 B) and stripe 4 head (50 B) both on disk 0.
    assert out == {0: 100, 1: 100, 2: 100, 3: 100}
    assert sum(out.values()) == 400


extent_strategy = st.tuples(
    st.integers(0, 5000),  # offset
    st.integers(1, 5000),  # length
    st.integers(0, 3),  # starting disk
    st.integers(1, 8),  # factor
    st.integers(1, 700),  # stripe size
)


@given(extent_strategy)
def test_split_extent_partitions_the_extent(args):
    """Property: the sub-extents exactly tile [offset, offset+length)."""
    off, length, start, factor, size = args
    s = Striping(start, factor, size)
    subs = s.split_extent(off, length)
    assert sum(x.length for x in subs) == length
    pos = off
    for x in subs:
        assert x.file_offset == pos
        assert x.disk == s.disk_of_offset(pos)
        pos += x.length
    assert pos == off + length


@given(extent_strategy)
def test_per_disk_bytes_matches_split(args):
    """Property: the closed-form per-disk histogram equals the explicit
    split (independent implementations must agree)."""
    off, length, start, factor, size = args
    s = Striping(start, factor, size)
    expected: dict[int, int] = {}
    for x in s.split_extent(off, length):
        expected[x.disk] = expected.get(x.disk, 0) + x.length
    assert s.per_disk_bytes(off, length) == expected


@given(extent_strategy)
def test_disks_for_extent_matches_split(args):
    off, length, start, factor, size = args
    s = Striping(start, factor, size)
    assert s.disks_for_extent(off, length) == {
        x.disk for x in s.split_extent(off, length)
    }
