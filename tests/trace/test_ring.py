"""Pipelined chunk transport: the shared-memory ring of repro.trace.ring.

The forked producer must hand back *exactly* the stream's chunk sequence
(possibly re-split at slot capacity — a re-chunking the simulator replays
bit-identically), propagate producer failures as :class:`TraceError`, and
detect a producer that dies without reporting.  The replay-level contract
— ``simulate(stream, pipeline=True)`` bit-equal to the in-process streamed
replay — is enforced in ``tests/disksim/test_pipeline_replay.py``; these
tests pin the transport itself.
"""

import os

import numpy as np
import pytest

from repro.trace.generator import stream_trace
from repro.trace.request import RequestColumns
from repro.trace.ring import (
    DEFAULT_SLOT_ROWS,
    pipeline_available,
    pipelined_chunks,
)
from repro.trace.stream import TraceStream
from repro.util.errors import TraceError

pytestmark = pytest.mark.skipif(
    not pipeline_available(), reason="requires the fork start method"
)


def _concat(chunks):
    chunks = [c for c in chunks if len(c)]
    assert chunks, "stream produced no requests"
    names = chunks[0].array_names
    return RequestColumns(
        np.concatenate([c.nominal_time_s for c in chunks]),
        np.concatenate([c.array_id for c in chunks]),
        np.concatenate([c.offset for c in chunks]),
        np.concatenate([c.nbytes for c in chunks]),
        np.concatenate([c.is_write for c in chunks]),
        np.concatenate([c.nest for c in chunks]),
        np.concatenate([c.iteration for c in chunks]),
        array_names=names,
        validate=False,
    )


def _assert_columns_equal(a: RequestColumns, b: RequestColumns) -> None:
    assert len(a) == len(b)
    assert a.array_names == b.array_names
    for col in (
        "nominal_time_s", "array_id", "offset", "nbytes",
        "is_write", "nest", "iteration",
    ):
        assert np.array_equal(getattr(a, col), getattr(b, col)), col


@pytest.fixture()
def stream(phase_program, phase_layout):
    return stream_trace(phase_program, phase_layout, chunk_requests=512)


class TestTransport:
    def test_chunks_bit_identical_to_inline_iteration(self, stream):
        inline = _concat(stream.iter_chunks())
        piped = _concat(pipelined_chunks(stream))
        _assert_columns_equal(piped, inline)

    def test_resplit_at_small_slots_preserves_sequence(self, stream):
        """Slots smaller than the stream's chunks force mid-chunk splits;
        the concatenated request sequence must be unchanged."""
        inline = _concat(stream.iter_chunks())
        stats: dict = {}
        piped = _concat(
            pipelined_chunks(stream, slot_rows=100, stats=stats)
        )
        _assert_columns_equal(piped, inline)
        assert stats["splits"] > 0
        assert stats["chunks"] > len(list(stream.iter_chunks()))

    def test_stream_stays_reiterable(self, stream):
        """Each pipelined pass forks a fresh producer over the factory."""
        first = _concat(pipelined_chunks(stream))
        second = _concat(pipelined_chunks(stream))
        _assert_columns_equal(first, second)

    def test_slot_rows_defaults_to_stream_hint(self, stream):
        stats: dict = {}
        for _ in pipelined_chunks(stream, stats=stats):
            pass
        assert stats["slot_rows"] == stream.chunk_requests == 512

    def test_slot_rows_defaults_without_hint(self, phase_layout):
        empty = TraceStream("p", phase_layout, 0.0, chunks=lambda: iter(()))
        stats: dict = {}
        assert list(pipelined_chunks(empty, stats=stats)) == []
        assert stats["slot_rows"] == DEFAULT_SLOT_ROWS
        assert stats["chunks"] == 0

    def test_stats_counters_populated(self, stream):
        stats: dict = {}
        n = sum(len(c) for c in pipelined_chunks(stream, stats=stats))
        assert n == sum(len(c) for c in stream.iter_chunks())
        assert stats["chunks"] >= 1
        assert stats["splits"] == 0
        assert stats["producer_stall_s"] >= 0.0
        assert stats["consumer_stall_s"] >= 0.0
        assert stats["queue_depth_samples"] == stats["chunks"]
        assert stats["slots"] >= 2


class TestValidation:
    def test_rejects_single_slot(self, stream):
        with pytest.raises(TraceError, match="at least 2 slots"):
            next(pipelined_chunks(stream, slots=1))

    def test_rejects_nonpositive_slot_rows(self, stream):
        with pytest.raises(TraceError, match="slot_rows"):
            next(pipelined_chunks(stream, slot_rows=0))


class TestFailurePropagation:
    def test_producer_exception_reraises_with_traceback(self, phase_layout):
        def chunks():
            raise RuntimeError("boom in the chunk factory")
            yield  # pragma: no cover

        bad = TraceStream("p", phase_layout, 0.0, chunks=chunks)
        with pytest.raises(TraceError, match="boom in the chunk factory"):
            list(pipelined_chunks(bad))

    def test_mid_stream_exception_after_good_chunks(self, stream):
        good = list(stream.iter_chunks())

        def chunks():
            yield good[0]
            raise ValueError("stream corrupted at chunk 1")

        bad = TraceStream("p", stream.layout, 0.0, chunks=chunks)
        it = pipelined_chunks(bad)
        first = next(it)
        assert len(first) == len(good[0])
        with pytest.raises(TraceError, match="stream corrupted at chunk 1"):
            list(it)

    def test_silent_producer_death_detected(self, phase_layout):
        def chunks():
            os._exit(3)
            yield  # pragma: no cover

        bad = TraceStream("p", phase_layout, 0.0, chunks=chunks)
        with pytest.raises(TraceError, match="died without reporting"):
            list(pipelined_chunks(bad))

    def test_abandoned_consumer_tears_down(self, stream):
        """Dropping the generator mid-stream must terminate the producer
        and unlink every shared segment (no BufferError, no leak)."""
        it = pipelined_chunks(stream, slot_rows=64)
        next(it)
        it.close()
