"""LRU buffer cache."""

import pytest

from repro.trace.buffercache import BufferCache
from repro.util.errors import TraceError
from repro.util.units import KB


def test_validation():
    with pytest.raises(TraceError):
        BufferCache(-1)
    with pytest.raises(TraceError):
        BufferCache(1024, line_bytes=0)


def test_miss_then_hit():
    c = BufferCache(64 * KB, line_bytes=8 * KB)
    missing = c.access_extents("f", [0], [8 * KB])
    assert missing == [(0, 8 * KB)]
    assert c.access_extents("f", [0], [8 * KB]) == []
    assert c.hits == 1 and c.misses == 1


def test_extents_coalesce_adjacent_miss_lines():
    c = BufferCache(1024 * KB, line_bytes=8 * KB)
    missing = c.access_extents("f", [0], [32 * KB])
    assert missing == [(0, 32 * KB)]


def test_partial_hits_split_runs():
    c = BufferCache(1024 * KB, line_bytes=8 * KB)
    c.access_extents("f", [8 * KB], [8 * KB])  # warm line 1
    missing = c.access_extents("f", [0], [32 * KB])  # lines 0..3, line 1 hot
    assert missing == [(0, 8 * KB), (16 * KB, 16 * KB)]


def test_line_alignment():
    c = BufferCache(1024 * KB, line_bytes=8 * KB)
    missing = c.access_extents("f", [4096], [100])
    assert missing == [(0, 8 * KB)]  # whole containing line fetched


def test_lru_eviction_order():
    c = BufferCache(2 * 8 * KB, line_bytes=8 * KB)  # 2 lines
    c.access_extents("f", [0], [8 * KB])          # line 0
    c.access_extents("f", [8 * KB], [8 * KB])     # line 1
    c.access_extents("f", [0], [8 * KB])          # touch line 0 (MRU)
    c.access_extents("f", [16 * KB], [8 * KB])    # evicts line 1
    assert c.contains("f", 0)
    assert not c.contains("f", 8 * KB)
    assert c.contains("f", 16 * KB)


def test_zero_capacity_always_misses():
    c = BufferCache(0, line_bytes=8 * KB)
    for _ in range(3):
        assert c.access_extents("f", [0], [8 * KB]) == [(0, 8 * KB)]
    assert c.hits == 0
    assert c.occupancy_lines == 0


def test_files_are_disjoint_namespaces():
    c = BufferCache(1024 * KB, line_bytes=8 * KB)
    c.access_extents("f1", [0], [8 * KB])
    assert c.access_extents("f2", [0], [8 * KB]) == [(0, 8 * KB)]
    assert c.contains("f1", 0) and c.contains("f2", 0)
    assert not c.contains("f3", 0)


def test_multiple_extents_in_one_call():
    c = BufferCache(1024 * KB, line_bytes=8 * KB)
    missing = c.access_extents("f", [0, 32 * KB], [8 * KB, 8 * KB])
    assert missing == [(0, 8 * KB), (32 * KB, 8 * KB)]


def test_empty_and_zero_length_extents():
    c = BufferCache(1024 * KB)
    assert c.access_extents("f", [], []) == []
    assert c.access_extents("f", [0], [0]) == []


def test_clear_resets():
    c = BufferCache(1024 * KB)
    c.access_extents("f", [0], [1])
    c.clear()
    assert c.occupancy_lines == 0
    assert c.misses == 0
    assert not c.contains("f", 0)


def test_working_set_larger_than_cache_thrashes():
    """Streaming twice over 2x the cache size misses everything twice."""
    c = BufferCache(4 * 8 * KB, line_bytes=8 * KB)  # 4 lines
    for _ in range(2):
        for line in range(8):
            c.access_extents("f", [line * 8 * KB], [8 * KB])
    assert c.misses == 16
    assert c.hits == 0
