"""Columnar trace pipeline ⇔ naive reference equivalence.

The vectorized generator (`generate_trace`) must be *bit-identical* to the
retained per-line reference walk (`generate_trace_reference`): same request
stream, same buffer-cache hit/miss counters, and same scheme replay results
— for random programs across all three batch-filter regimes and for every
bundled Table 2 workload.
"""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from strategies import programs  # noqa: E402

from repro.disksim.params import SubsystemParams
from repro.experiments import schemes as schemes_mod
from repro.layout.files import default_layout
from repro.trace.buffercache import BufferCache, filter_occurrences
from repro.trace.generator import (
    TraceOptions,
    generate_trace,
    generate_trace_reference,
)
from repro.workloads import all_workloads

_SLOW_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- #
# Batch cache filter vs the per-line LRU, all regimes.
# --------------------------------------------------------------------- #
@settings(max_examples=80, deadline=None)
@given(
    keys=st.lists(st.integers(0, 9), max_size=80),
    capacity=st.integers(0, 12),
)
def test_filter_occurrences_matches_per_line_lru(keys, capacity):
    """Random occurrence streams land in every regime (capacity 0, no
    eviction possible, eviction pressure) and must reproduce the naive
    per-line cache exactly — miss positions and both counters."""
    arr = np.asarray(keys, dtype=np.int64)
    miss, hits, misses = filter_occurrences(arr, capacity)
    lb = 8
    cache = BufferCache(capacity * lb, line_bytes=lb)
    expect = [bool(cache.access_extents("f", [k * lb], [lb])) for k in keys]
    assert miss.tolist() == expect
    assert (cache.hits, cache.misses) == (hits, misses)
    assert hits + misses == len(keys)


def test_filter_occurrences_regimes_explicit():
    keys = np.array([0, 1, 2, 0, 1, 2], dtype=np.int64)
    # Caching disabled: every touch misses.
    miss, hits, misses = filter_occurrences(keys, 0)
    assert miss.all() and (hits, misses) == (0, 6)
    # Working set fits: first occurrence misses, re-references hit.
    miss, hits, misses = filter_occurrences(keys, 3)
    assert miss.tolist() == [True, True, True, False, False, False]
    assert (hits, misses) == (3, 3)
    # Eviction pressure (LRU of 2 over 3 lines): the classic thrash —
    # every touch evicts the line the next touch needs, so all miss.
    miss, hits, misses = filter_occurrences(keys, 2)
    assert miss.all() and (hits, misses) == (0, 6)


# --------------------------------------------------------------------- #
# Property: random programs, layouts, and cache geometries.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_random_programs_bit_identical(data):
    program = data.draw(programs())
    line = data.draw(st.sampled_from([16, 64, 256]))
    # 0 => disabled; tiny => eviction-pressure fallback; huge => the
    # no-eviction vectorized fast path.
    cap_lines = data.draw(st.sampled_from([0, 2, 4, 1 << 20]))
    max_req = data.draw(st.sampled_from([32, 128, 4096]))
    opts = TraceOptions(
        buffer_cache_bytes=cap_lines * line,
        cache_line_bytes=line,
        max_request_bytes=max_req,
    )
    layout = default_layout(
        program.arrays, num_disks=data.draw(st.sampled_from([1, 4]))
    )
    ref_stats: dict = {}
    vec_stats: dict = {}
    ref = generate_trace_reference(program, layout, opts, stats=ref_stats)
    vec = generate_trace(program, layout, opts, stats=vec_stats)
    assert vec.requests == ref.requests
    assert vec_stats == ref_stats
    assert vec == ref  # layout, compute time, directives, columns


# --------------------------------------------------------------------- #
# Bundled Table 2 workloads: requests, counters, and scheme replays.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_bundled_workload_requests_and_counters_identical(workload):
    layout = default_layout(workload.program.arrays, num_disks=4)
    ref_stats: dict = {}
    vec_stats: dict = {}
    ref = generate_trace_reference(
        workload.program, layout, workload.trace_options, stats=ref_stats
    )
    vec = generate_trace(
        workload.program, layout, workload.trace_options, stats=vec_stats
    )
    assert vec.num_requests == ref.num_requests
    assert vec.requests == ref.requests
    assert vec_stats == ref_stats
    assert vec.total_bytes == ref.total_bytes
    assert vec == ref


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_bundled_workload_scheme_replays_identical(
    workload, monkeypatch, assert_results_identical
):
    """Full seven-scheme suites driven by the two generators must agree
    field-by-field — the end-to-end guarantee the figures rest on."""
    params = SubsystemParams(num_disks=4)
    vec_suite = schemes_mod.run_workload(workload, params=params)
    with monkeypatch.context() as m:
        m.setattr(schemes_mod, "generate_trace", generate_trace_reference)
        ref_suite = schemes_mod.run_workload(workload, params=params)
    assert set(vec_suite.results) == set(ref_suite.results)
    for scheme, ref_result in ref_suite.results.items():
        assert_results_identical(vec_suite.results[scheme], ref_result)
    assert vec_suite.measured == ref_suite.measured
