"""Property and fuzz tests for recorded-trace ingestion.

Three families:

* **round-trips** — random valid records survive
  serialize → parse → normalize bit for bit, in both on-disk formats and
  across them (the text format writes ``repr()`` floats precisely so it
  loses nothing against the binary doubles);
* **chunked ⇔ whole identity** — any chunking of one file normalizes to
  the identical column arrays, and out-of-order inputs either raise
  :class:`TraceError` (strict default) or, under ``sort=True``, match the
  pre-sorted ingest exactly;
* **malformed input** — corrupted text lines and randomly mutated binary
  bytes must *always* surface as :class:`TraceError`: never another
  exception type, never a silently truncated parse.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from strategies import ingest_records  # noqa: E402

from repro.trace.ingest import (
    BINARY_MAGIC,
    ingest_trace,
    read_records,
    scan_trace,
    stream_ingest,
    write_binary_records,
    write_text_records,
)
from repro.util.errors import TraceError

_SLOW_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_COLUMN_FIELDS = (
    "nominal_time_s", "array_id", "offset", "nbytes", "is_write",
    "nest", "iteration",
)


def _write(records, fmt: str, dirpath: Path) -> Path:
    path = dirpath / ("t.trace" if fmt == "text" else "t.btrace")
    if fmt == "text":
        write_text_records(path, records)
    else:
        write_binary_records(path, records)
    return path


def _assert_columns_equal(a, b) -> None:
    assert len(a) == len(b)
    for f in _COLUMN_FIELDS:
        assert np.array_equal(getattr(a, f), getattr(b, f)), f
    assert a.array_names == b.array_names


# --------------------------------------------------------------------- #
# Round-trips
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(records=ingest_records(), fmt=st.sampled_from(["text", "binary"]))
def test_serialize_parse_round_trip(records, fmt):
    """write → read reproduces every record exactly, floats included."""
    with tempfile.TemporaryDirectory() as d:
        path = _write(records, fmt, Path(d))
        assert list(read_records(path)) == records
        # Format auto-detection lands on the format we wrote.
        assert list(read_records(path, fmt=fmt)) == records


@_SLOW_SETTINGS
@given(records=ingest_records())
def test_text_and_binary_normalize_identically(records):
    """One record list, both formats: byte-identical columns, identical
    scans, and a re-serialization of the parsed records is stable."""
    with tempfile.TemporaryDirectory() as d:
        tp = _write(records, "text", Path(d))
        bp = _write(records, "binary", Path(d))
        ct = ingest_trace(tp, num_disks=4).columns
        cb = ingest_trace(bp, num_disks=4).columns
        _assert_columns_equal(ct, cb)
        assert scan_trace(tp) == scan_trace(bp)
        # parse → serialize → parse is a fixed point.
        rt = list(read_records(tp))
        tp2 = Path(d) / "again.trace"
        write_text_records(tp2, rt)
        assert list(read_records(tp2)) == rt


@_SLOW_SETTINGS
@given(
    records=ingest_records(min_size=2),
    chunk=st.sampled_from([1, 7, 64, 65536]),
    fmt=st.sampled_from(["text", "binary"]),
)
def test_chunked_ingest_matches_whole(records, chunk, fmt):
    """Any chunking of one file concatenates to the whole-file columns."""
    with tempfile.TemporaryDirectory() as d:
        path = _write(records, fmt, Path(d))
        whole = ingest_trace(path, num_disks=4).columns
        stream = stream_ingest(path, num_disks=4, chunk_requests=chunk)
        chunks = list(stream.iter_chunks())
        assert all(len(c) <= chunk for c in chunks)
        for f in _COLUMN_FIELDS:
            got = np.concatenate([getattr(c, f) for c in chunks])
            assert np.array_equal(got, getattr(whole, f)), f
        # The stream is re-iterable: a second pass yields the same chunks.
        again = list(stream.iter_chunks())
        assert len(again) == len(chunks)
        for c1, c2 in zip(chunks, again):
            _assert_columns_equal(c1, c2)


# --------------------------------------------------------------------- #
# Ordering: strict by default, sort=True recovers exactly.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(
    records=ingest_records(min_size=3, ordered=False),
    fmt=st.sampled_from(["text", "binary"]),
)
def test_out_of_order_strict_raises_and_sort_recovers(records, fmt):
    arrivals = [r[0] for r in records]
    is_sorted = all(a <= b for a, b in zip(arrivals, arrivals[1:]))
    with tempfile.TemporaryDirectory() as d:
        path = _write(records, fmt, Path(d))
        if not is_sorted:
            with pytest.raises(TraceError, match="order"):
                ingest_trace(path, num_disks=4)
            # The streamed reader has no sort option — always strict.
            with pytest.raises(TraceError, match="order"):
                for _ in stream_ingest(path, num_disks=4).iter_chunks():
                    pass
        sorted_dir = Path(d) / "sorted"
        sorted_dir.mkdir()
        sorted_path = _write(
            sorted(records, key=lambda r: r[0]), fmt, sorted_dir
        )
        got = ingest_trace(path, num_disks=4, sort=True).columns
        want = ingest_trace(sorted_path, num_disks=4).columns
        _assert_columns_equal(got, want)


# --------------------------------------------------------------------- #
# Malformed text: every corruption is a TraceError.
# --------------------------------------------------------------------- #
_TEXT_CORRUPTIONS = (
    lambda f: " ".join(f[:4]),                 # missing kind field
    lambda f: " ".join(f + ["R"]),             # extra field
    lambda f: " ".join(["x"] + f[1:]),         # non-numeric arrival
    lambda f: " ".join(["nan"] + f[1:]),       # non-finite arrival
    lambda f: " ".join(["inf"] + f[1:]),
    lambda f: " ".join(["-1.0"] + f[1:]),      # negative arrival
    lambda f: " ".join([f[0], "-2"] + f[2:]),  # negative device
    lambda f: " ".join(f[:2] + ["-5"] + f[3:]),    # negative lba
    lambda f: " ".join(f[:3] + ["0", f[4]]),   # zero-size request
    lambda f: " ".join(f[:3] + ["-4096", f[4]]),
    lambda f: " ".join(f[:4] + ["X"]),         # bad kind letter
    lambda f: " ".join(f[:2] + ["3.5"] + f[3:]),   # fractional lba
)


@_SLOW_SETTINGS
@given(
    records=ingest_records(min_size=1, max_size=20),
    corrupt=st.sampled_from(range(len(_TEXT_CORRUPTIONS))),
    data=st.data(),
)
def test_malformed_text_always_raises(records, corrupt, data):
    """Corrupting any one line raises TraceError naming that line — it
    never crashes differently and never silently drops the record."""
    with tempfile.TemporaryDirectory() as d:
        path = _write(records, "text", Path(d))
        lines = path.read_text().splitlines()
        # Line 1 is the header comment; pick a record line to corrupt.
        victim = data.draw(st.integers(1, len(lines) - 1))
        fields = lines[victim].split()
        lines[victim] = _TEXT_CORRUPTIONS[corrupt](fields)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match=f"line {victim + 1}"):
            list(read_records(path))
        with pytest.raises(TraceError):
            ingest_trace(path, num_disks=4)


# --------------------------------------------------------------------- #
# Binary fuzz: random byte mutations.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(records=ingest_records(min_size=1, max_size=30), data=st.data())
def test_binary_fuzz_never_crashes_or_truncates(records, data):
    """Random single-byte flips, truncations, and appended garbage either
    parse to a fully validated record list or raise TraceError — no other
    exception type, and a successful parse is never shorter than the
    header's record count."""
    with tempfile.TemporaryDirectory() as d:
        path = _write(records, "binary", Path(d))
        blob = bytearray(path.read_bytes())
        op = data.draw(st.sampled_from(["flip", "truncate", "append"]))
        if op == "flip":
            i = data.draw(st.integers(0, len(blob) - 1))
            blob[i] ^= 1 << data.draw(st.integers(0, 7))
        elif op == "truncate":
            blob = blob[: data.draw(st.integers(0, len(blob) - 1))]
        else:
            blob += bytes(data.draw(st.integers(1, 28)))
        path.write_bytes(bytes(blob))
        try:
            parsed = list(read_records(path, fmt="auto"))
        except TraceError:
            return
        # The mutation happened to keep the file well-formed: every
        # surviving record passed validation, and the count is exactly
        # what the (possibly mutated) header promised.
        count = int.from_bytes(blob[8:16], "little")
        assert len(parsed) == count
        for arrival, device, lba, nbytes, is_write in parsed:
            assert arrival >= 0.0 and np.isfinite(arrival)
            assert device >= 0 and lba >= 0 and nbytes > 0
            assert isinstance(is_write, bool)


def test_bad_magic_is_a_trace_error(tmp_path):
    p = tmp_path / "bad.btrace"
    p.write_bytes(b"NOTMAGIC" + bytes(16))
    with pytest.raises(TraceError):
        list(read_records(p, fmt="binary"))
    # auto-detection falls back to text, whose parse also fails cleanly.
    with pytest.raises(TraceError):
        list(read_records(p, fmt="auto"))


def test_magic_only_file_is_a_trace_error(tmp_path):
    p = tmp_path / "empty.btrace"
    p.write_bytes(BINARY_MAGIC)
    with pytest.raises(TraceError):
        list(read_records(p))


# --------------------------------------------------------------------- #
# Geometry validation under explicit parameters.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(records=ingest_records(min_size=1, max_size=20))
def test_lba_overflow_with_explicit_capacity_raises(records):
    """A device capacity below the trace's max extent is an LBA-overflow
    TraceError, whole-file and streamed alike."""
    with tempfile.TemporaryDirectory() as d:
        path = _write(records, "text", Path(d))
        scan = scan_trace(path)
        too_small = max(512, scan.max_extent_bytes // 2)
        if too_small >= scan.max_extent_bytes:
            return  # tiny traces can't be made to overflow
        with pytest.raises(TraceError):
            ingest_trace(
                path, num_disks=4, device_capacity_bytes=too_small
            )
        with pytest.raises(TraceError):
            for _ in stream_ingest(
                path, num_disks=4, device_capacity_bytes=too_small
            ).iter_chunks():
                pass


@_SLOW_SETTINGS
@given(records=ingest_records(min_size=1, max_size=20))
def test_device_out_of_declared_range_raises(records):
    """Declaring fewer devices than the trace uses is a TraceError."""
    max_dev = max(r[1] for r in records)
    if max_dev == 0:
        return
    with tempfile.TemporaryDirectory() as d:
        path = _write(records, "text", Path(d))
        with pytest.raises(TraceError):
            ingest_trace(path, num_disks=4, num_devices=max_dev)
