"""Trace record merging semantics and trace-file robustness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.nodes import PowerAction, PowerCall
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import DirectiveRecord, IORequest, Trace
from repro.trace.tracefile import parse_trace
from repro.util.errors import TraceError
from repro.util.units import KB


def _layout():
    return SubsystemLayout(
        num_disks=2, entries=(FileEntry("A", 256 * KB, Striping(0, 2, 64 * KB), 0),)
    )


def _req(t):
    return IORequest(t, "A", 0, 512, False)


def _dir(t, disk=0):
    return DirectiveRecord(t, PowerCall(PowerAction.SPIN_DOWN, disk))


def test_merged_orders_by_time():
    trace = Trace(
        "t",
        _layout(),
        ( _req(1.0), _req(3.0) ),
        ( _dir(0.5), _dir(2.0), _dir(4.0) ),
        total_compute_s=5.0,
    )
    kinds = [
        "D" if isinstance(r, DirectiveRecord) else "R" for r in trace.merged()
    ]
    assert kinds == ["D", "R", "D", "R", "D"]


def test_merged_tie_prefers_directive():
    trace = Trace("t", _layout(), (_req(1.0),), (_dir(1.0),), 2.0)
    first, second = list(trace.merged())
    assert isinstance(first, DirectiveRecord)
    assert isinstance(second, IORequest)


def test_with_directives_sorts():
    trace = Trace("t", _layout(), (_req(1.0),), (), 2.0)
    out = trace.with_directives([_dir(3.0), _dir(0.2)])
    times = [d.nominal_time_s for d in out.directives]
    assert times == [0.2, 3.0]


def test_unsorted_directives_rejected_directly():
    with pytest.raises(TraceError):
        Trace("t", _layout(), (), (_dir(3.0), _dir(0.2)), 2.0)


def test_request_validation():
    with pytest.raises(TraceError):
        IORequest(-1.0, "A", 0, 512, False)
    with pytest.raises(TraceError):
        IORequest(0.0, "A", -1, 512, False)
    with pytest.raises(TraceError):
        IORequest(0.0, "A", 0, 0, False)
    with pytest.raises(TraceError):
        DirectiveRecord(-0.1, PowerCall(PowerAction.SPIN_UP, 0))


@given(
    st.lists(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2000),
            max_size=40,
        ),
        max_size=8,
    )
)
def test_parse_trace_never_crashes_uncontrolled(lines):
    """Fuzz: arbitrary text either parses or raises TraceError/LayoutError —
    never an uncontrolled exception."""
    from repro.util.errors import LayoutError

    text = "\n".join(lines)
    try:
        parse_trace(text, _layout())
    except (TraceError, LayoutError):
        pass


def test_parse_trace_block_outside_files_is_layout_error():
    from repro.util.errors import LayoutError

    with pytest.raises(LayoutError):
        parse_trace("0.0 999999 512 R", _layout())
