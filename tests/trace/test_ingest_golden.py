"""Golden regression pins for recorded-trace ingestion.

Like ``tests/workloads/test_golden.py``, these freeze deterministic facts
of the bundled fixtures under ``tests/fixtures/traces/`` — the exact
normalized :class:`~repro.trace.request.RequestColumns` (as a SHA-256 over
the column bytes plus spot-checked first/last rows) and the exact
open-loop scheme replay results — so any drift in the parsers, the
device→disk mapping, or the open-loop engines shows up as a diff here
rather than as silent corruption of replayed results.  The text and
binary fixtures encode the *same* 48 records, so their normalized columns
must be byte-identical.

If you change the ingest normalization on purpose, regenerate the pins
with the digest helper below and re-run the differential suites.
"""

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.controllers.drpm import ReactiveDRPM
from repro.controllers.tpm import ReactiveTPM
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.trace.ingest import ingest_trace, read_records, scan_trace
from repro.util.errors import TraceError

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures" / "traces"
TEXT = FIXTURES / "small.trace"
BINARY = FIXTURES / "small.btrace"
MALFORMED = FIXTURES / "malformed.trace"

#: SHA-256 over every normalized column's bytes, in field order.
GOLDEN_COLUMNS_SHA256 = (
    "4657e75654b8a2fb04b88736e2b1613b4e9291eb443444d33a8a7126194ff59b"
)

GOLDEN_NUM_RECORDS = 48
GOLDEN_NUM_DEVICES = 4
GOLDEN_LAST_ARRIVAL_S = 85.593486
GOLDEN_MAX_EXTENT_BYTES = 15728640
GOLDEN_NUM_WRITES = 13

#: Open-loop replay pins on the default 4-disk Table 1 parameters.  The
#: fixture's eight ~6 s silences trip reactive TPM (six spin-downs, whose
#: spin-up costs make it *lose* energy here — the paper's wrong-threshold
#: failure mode); reactive DRPM's 30-request window never fills on 48
#: requests over 4 disks, so it must equal Base exactly.
GOLDEN_BASE_EXEC_S = 85.59971213636364
GOLDEN_BASE_ENERGY_J = 3493.3503339136364
GOLDEN_TPM_EXEC_S = 96.48402804545455
GOLDEN_TPM_ENERGY_J = 3846.0319974545455
GOLDEN_TPM_SPIN_DOWNS = 6


def _columns_digest(cols) -> str:
    h = hashlib.sha256()
    for a in (
        cols.nominal_time_s,
        cols.array_id,
        cols.offset,
        cols.nbytes,
        cols.is_write.astype(np.uint8),
        cols.nest,
        cols.iteration,
    ):
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


def _energy(result) -> float:
    return sum(ds.total_energy_j for ds in result.disk_stats)


@pytest.mark.parametrize("path", [TEXT, BINARY], ids=["text", "binary"])
def test_normalized_columns_pinned(path):
    trace = ingest_trace(path, num_disks=4)
    assert trace.num_requests == GOLDEN_NUM_RECORDS
    assert _columns_digest(trace.columns) == GOLDEN_COLUMNS_SHA256
    # Spot-check the endpoints: LBAs are 512-byte sectors, so the byte
    # offset is lba * 512; arrivals survive the text round-trip exactly.
    c = trace.columns
    assert float(c.nominal_time_s[0]) == 10.167627
    assert (int(c.array_id[0]), int(c.offset[0]), int(c.nbytes[0])) == (
        2, 983040, 4096,
    )
    assert not bool(c.is_write[0])
    assert float(c.nominal_time_s[-1]) == 85.593486
    assert (int(c.array_id[-1]), int(c.offset[-1]), int(c.nbytes[-1])) == (
        0, 4882432, 16384,
    )
    assert int(c.is_write.sum()) == GOLDEN_NUM_WRITES
    assert c.array_names == ("dev0", "dev1", "dev2", "dev3")


def test_text_and_binary_fixtures_are_identical():
    """The two fixtures encode the same records: record-level equality and
    byte-identical normalized columns."""
    assert list(read_records(TEXT)) == list(read_records(BINARY))
    assert ingest_trace(TEXT, num_disks=4).columns == ingest_trace(
        BINARY, num_disks=4
    ).columns


@pytest.mark.parametrize("path", [TEXT, BINARY], ids=["text", "binary"])
def test_scan_pinned(path):
    scan = scan_trace(path)
    assert scan.num_records == GOLDEN_NUM_RECORDS
    assert scan.num_devices == GOLDEN_NUM_DEVICES
    assert scan.last_arrival_s == GOLDEN_LAST_ARRIVAL_S
    assert scan.max_extent_bytes == GOLDEN_MAX_EXTENT_BYTES


def test_malformed_fixture_raises_with_line_number():
    with pytest.raises(TraceError, match="line 5"):
        list(read_records(MALFORMED))
    with pytest.raises(TraceError):
        ingest_trace(MALFORMED, num_disks=4)


@pytest.mark.parametrize("engine", ["stepwise", "segmented", "auto"])
def test_scheme_replay_results_pinned(engine):
    """Open-loop scheme replays of the fixture are pinned to the exact
    float — identically on every engine."""
    trace = ingest_trace(TEXT, num_disks=4)
    params = SubsystemParams(num_disks=4)

    base = simulate(trace, params, engine=engine, open_loop=True)
    assert base.execution_time_s == GOLDEN_BASE_EXEC_S
    assert _energy(base) == GOLDEN_BASE_ENERGY_J
    assert base.total_spin_downs == 0

    tpm = simulate(
        trace,
        params,
        ReactiveTPM(params.effective_tpm_threshold_s),
        engine=engine,
        open_loop=True,
    )
    assert tpm.execution_time_s == GOLDEN_TPM_EXEC_S
    assert _energy(tpm) == GOLDEN_TPM_ENERGY_J
    assert tpm.total_spin_downs == GOLDEN_TPM_SPIN_DOWNS

    # 48 requests over 4 disks never fill DRPM's 30-request window: the
    # heuristic must do nothing, bit for bit.
    drpm = simulate(
        trace, params, ReactiveDRPM(params.drpm), engine=engine, open_loop=True
    )
    assert drpm.num_directives == 0
    assert drpm.execution_time_s == GOLDEN_BASE_EXEC_S
    assert _energy(drpm) == GOLDEN_BASE_ENERGY_J
