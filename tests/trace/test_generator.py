"""Trace generation: request streams, caching, coalescing, directives."""

import pytest

from repro.analysis.cycles import compute_timing
from repro.ir.builder import ProgramBuilder
from repro.ir.nodes import PowerAction, PowerCall
from repro.layout.files import default_layout
from repro.trace.generator import (
    CallPlacement,
    TraceOptions,
    directives_at_positions,
    generate_trace,
)
from repro.util.errors import TraceError
from repro.util.units import KB


def _rows_program(rows=8, width=1024):
    """8 KB rows, each swept once."""
    b = ProgramBuilder("rows")
    A = b.array("A", (rows, width))
    with b.nest("i", 0, rows) as i:
        with b.loop("j", 0, width) as j:
            b.stmt(reads=[A[i, j]], cycles=10)
    return b.build()


def test_row_sweep_one_request_per_row():
    prog = _rows_program()
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(
        prog, lay, TraceOptions(cache_line_bytes=8 * KB, max_request_bytes=8 * KB)
    )
    assert trace.num_requests == 8
    assert all(r.nbytes == 8 * KB for r in trace.requests)
    assert [r.offset for r in trace.requests] == [i * 8 * KB for i in range(8)]
    assert all(not r.is_write for r in trace.requests)
    assert trace.total_bytes == prog.array("A").size_bytes


def test_requests_carry_provenance_and_times():
    prog = _rows_program()
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(prog, lay)
    timing = compute_timing(prog)
    for t, r in enumerate(trace.requests):
        assert r.nest == 0
        assert r.iteration == t
        assert r.nominal_time_s == pytest.approx(timing.nest(0).iteration_start_s(t))


def test_cache_hits_suppress_requests():
    """Re-sweeping a cached array produces no second round of requests."""
    b = ProgramBuilder("p")
    A = b.array("A", (8, 1024))  # 64 KB total, fits in cache
    for tag in ("a", "b"):
        with b.nest(f"i{tag}", 0, 8) as i:
            with b.loop(f"j{tag}", 0, 1024) as j:
                b.stmt(reads=[A[i, j]], cycles=1)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(prog, lay, TraceOptions(buffer_cache_bytes=1024 * KB))
    assert trace.num_requests == 8  # only the first sweep misses


def test_max_request_bytes_splits():
    prog = _rows_program(rows=1, width=8192)  # one 64 KB row
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(
        prog, lay, TraceOptions(cache_line_bytes=8 * KB, max_request_bytes=16 * KB)
    )
    assert trace.num_requests == 4
    assert all(r.nbytes == 16 * KB for r in trace.requests)


def test_write_refs_become_write_requests():
    b = ProgramBuilder("p")
    A = b.array("A", (4, 1024))
    with b.nest("i", 0, 4) as i:
        with b.loop("j", 0, 1024) as j:
            b.stmt(writes=[A[i, j]], cycles=1)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(prog, lay)
    assert trace.num_requests == 4
    assert all(r.is_write for r in trace.requests)


def test_read_then_write_same_row_counts_once():
    b = ProgramBuilder("p")
    A = b.array("A", (4, 1024))
    with b.nest("i", 0, 4) as i:
        with b.loop("j", 0, 1024) as j:
            b.stmt(reads=[A[i, j]], writes=[A[i, j]], cycles=1)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(prog, lay)
    assert trace.num_requests == 4  # write hits the line the read allocated


def test_total_compute_matches_timing():
    prog = _rows_program()
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(prog, lay)
    assert trace.total_compute_s == pytest.approx(compute_timing(prog).total_seconds)


def test_directives_at_positions():
    prog = _rows_program()
    timing = compute_timing(prog)
    call = PowerCall(PowerAction.SPIN_DOWN, 1)
    recs = directives_at_positions(
        [
            CallPlacement(0, 4, call),
            CallPlacement(0, 2, call, fraction=0.5),
            CallPlacement(0, 8, call),  # == trip count: right after the nest
        ],
        timing,
    )
    times = [r.nominal_time_s for r in recs]
    assert times == sorted(times)
    assert times[0] == pytest.approx(
        timing.nest(0).iteration_start_s(2) + 0.5 * timing.nest(0).seconds_per_iteration
    )
    assert times[2] == pytest.approx(timing.nest(0).end_s)


def test_directives_validate_positions():
    prog = _rows_program()
    timing = compute_timing(prog)
    call = PowerCall(PowerAction.SPIN_UP, 0)
    with pytest.raises(TraceError):
        directives_at_positions([CallPlacement(0, 9, call)], timing)
    with pytest.raises(TraceError):
        directives_at_positions([CallPlacement(0, 8, call, fraction=0.5)], timing)
    with pytest.raises(TraceError):
        directives_at_positions([CallPlacement(0, 1, call, fraction=1.5)], timing)


def test_merged_orders_directives_before_tied_requests():
    prog = _rows_program()
    lay = default_layout(prog.arrays, num_disks=4)
    trace = generate_trace(prog, lay)
    timing = compute_timing(prog)
    call = PowerCall(PowerAction.SPIN_UP, 0)
    recs = directives_at_positions([CallPlacement(0, 3, call)], timing)
    merged = list(trace.with_directives(recs).merged())
    idx = next(i for i, r in enumerate(merged) if hasattr(r, "call"))
    # The directive lands exactly at iteration 3's start, before its request.
    assert merged[idx + 1].iteration == 3
