"""Trace file round-trips in the paper's four-field format."""

import pytest

from repro.layout.files import default_layout
from repro.trace.generator import generate_trace
from repro.trace.request import IORequest, Trace
from repro.trace.tracefile import format_trace, parse_trace, read_trace, write_trace
from repro.util.errors import TraceError
from repro.util.units import KB
from repro.ir.builder import ProgramBuilder


def _trace():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 1024))
    B = b.array("B", (8, 1024))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 1024) as j:
            b.stmt(reads=[A[i, j]], writes=[B[i, j]], cycles=100)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    return generate_trace(prog, lay)


def test_format_contains_paper_fields():
    trace = _trace()
    text = format_trace(trace)
    lines = [l for l in text.splitlines() if not l.startswith("#")]
    assert len(lines) == trace.num_requests
    first = lines[0].split()
    assert len(first) == 4
    float(first[0])  # arrival ms
    int(first[1])  # start block
    int(first[2])  # size
    assert first[3] in ("R", "W")


def test_round_trip_preserves_requests():
    trace = _trace()
    back = parse_trace(format_trace(trace), trace.layout)
    assert back.program_name == trace.program_name
    assert back.num_requests == trace.num_requests
    assert back.total_compute_s == pytest.approx(trace.total_compute_s)
    for a, b in zip(trace.requests, back.requests):
        assert (a.array, a.offset, a.nbytes, a.is_write) == (
            b.array,
            b.offset,
            b.nbytes,
            b.is_write,
        )
        assert b.nominal_time_s == pytest.approx(a.nominal_time_s, abs=1e-6)


def test_file_round_trip(tmp_path):
    trace = _trace()
    path = tmp_path / "trace.txt"
    write_trace(trace, path)
    back = read_trace(path, trace.layout)
    assert back.num_requests == trace.num_requests


def test_block_numbers_are_global(tmp_path):
    """B's blocks start after A's, so request lines disambiguate files."""
    trace = _trace()
    text = format_trace(trace)
    blocks = [int(l.split()[1]) for l in text.splitlines() if not l.startswith("#")]
    a_blocks = trace.layout.entry("A").block_range
    b_blocks = trace.layout.entry("B").block_range
    assert any(a_blocks[0] <= b < a_blocks[1] for b in blocks)
    assert any(b_blocks[0] <= b < b_blocks[1] for b in blocks)


def test_parse_rejects_malformed():
    trace = _trace()
    with pytest.raises(TraceError, match="4 fields"):
        parse_trace("1.0 2 3", trace.layout)
    with pytest.raises(TraceError, match="request type"):
        parse_trace("1.0 0 512 X", trace.layout)
    with pytest.raises(TraceError):
        parse_trace("abc 0 512 R", trace.layout)


def test_trace_ordering_enforced():
    trace = _trace()
    with pytest.raises(TraceError, match="ordered"):
        Trace(
            "t",
            trace.layout,
            (
                IORequest(2.0, "A", 0, 512, False),
                IORequest(1.0, "A", 0, 512, False),
            ),
        )


# --------------------------------------------------------------------- #
# The shared unknown-provenance sentinel.
# --------------------------------------------------------------------- #
def test_unknown_position_sentinel_is_unified(tmp_path):
    """Every source of requests without loop-nest provenance — streamed
    trace-file reads, ingested recorded traces, synthetic workloads, and
    bare :class:`IORequest` defaults — uses the one documented
    :data:`repro.trace.request.UNKNOWN_POSITION` sentinel (regression:
    these used to hard-code ``-1`` independently)."""
    import numpy as np

    import repro.trace as trace_pkg
    from repro.trace.ingest import ingest_trace, write_text_records
    from repro.trace.request import UNKNOWN_POSITION
    from repro.trace.synth import SynthConfig, synth_trace
    from repro.trace.tracefile import read_trace_chunks, stream_trace_file

    assert UNKNOWN_POSITION == -1
    assert trace_pkg.UNKNOWN_POSITION is UNKNOWN_POSITION

    # Bare IORequest: unknown provenance by default.
    req = IORequest(0.0, "A", 0, 512, False)
    assert req.nest == UNKNOWN_POSITION
    assert req.iteration == UNKNOWN_POSITION

    # Streamed trace-file reads (the four-field format drops provenance).
    trace = _trace()
    path = tmp_path / "t.trace"
    write_trace(trace, path)
    for cols in read_trace_chunks(path, trace.layout, chunk_requests=64):
        assert (cols.nest == UNKNOWN_POSITION).all()
        assert (cols.iteration == UNKNOWN_POSITION).all()
    stream = stream_trace_file(path, trace.layout, chunk_requests=64)
    chunk = next(iter(stream.iter_chunks()))
    assert (chunk.nest == UNKNOWN_POSITION).all()

    # Ingested recorded traces.
    rec_path = tmp_path / "r.trace"
    write_text_records(
        rec_path, [(0.0, 0, 0, 512, False), (1.0, 1, 16, 4096, True)]
    )
    cols = ingest_trace(rec_path, num_disks=2).columns
    assert (cols.nest == UNKNOWN_POSITION).all()
    assert (cols.iteration == UNKNOWN_POSITION).all()
    assert cols.nest.dtype == np.int64

    # Synthetic workloads.
    cols = synth_trace(SynthConfig(num_requests=32, num_disks=2)).columns
    assert (cols.nest == UNKNOWN_POSITION).all()
    assert (cols.iteration == UNKNOWN_POSITION).all()
