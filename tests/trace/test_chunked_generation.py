"""Chunked/streaming trace generation ⇔ whole-trace equivalence.

`generate_trace_chunks` must concatenate to exactly `generate_trace`'s
columns — same requests, same buffer-cache hit/miss counters — for every
chunk size and cache regime, because the streamed replay's bit-identity
guarantee rests on the request sequence being chunking-invariant.
`stream_trace` must additionally be *re-iterable* (each pass regenerates
the identical chunks from a fresh carried cache state), and the trace-file
streaming reader must round-trip what `write_trace` wrote.
"""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from strategies import programs  # noqa: E402

from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.layout.files import default_layout
from repro.trace.generator import (
    TraceOptions,
    generate_trace,
    generate_trace_chunks,
    stream_trace,
)
from repro.trace.request import RequestColumns
from repro.trace.stream import TraceStream
from repro.trace.tracefile import (
    read_trace,
    read_trace_chunks,
    stream_trace_file,
    write_trace,
)
from repro.util.errors import TraceError
from repro.workloads import all_workloads

_SLOW_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_COLUMN_FIELDS = (
    "nominal_time_s",
    "array_id",
    "offset",
    "nbytes",
    "is_write",
    "nest",
    "iteration",
)


def _concat(chunks) -> RequestColumns | None:
    chunks = list(chunks)
    if not chunks:
        return None
    return RequestColumns(
        array_names=chunks[0].array_names,
        **{
            f: np.concatenate([getattr(c, f) for c in chunks])
            for f in _COLUMN_FIELDS
        },
    )


def _assert_columns_identical(a: RequestColumns, b: RequestColumns) -> None:
    assert a.array_names == b.array_names
    assert len(a) == len(b)
    for f in _COLUMN_FIELDS:
        fa, fb = getattr(a, f), getattr(b, f)
        assert fa.dtype == fb.dtype, f
        assert np.array_equal(fa, fb), f


# --------------------------------------------------------------------- #
# Property: chunked == whole for random programs × cache regimes × sizes.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_chunked_generation_bit_identical(data):
    program = data.draw(programs())
    line = data.draw(st.sampled_from([16, 64, 256]))
    cap_lines = data.draw(st.sampled_from([0, 2, 1 << 20]))
    opts = TraceOptions(
        buffer_cache_bytes=cap_lines * line,
        cache_line_bytes=line,
        max_request_bytes=data.draw(st.sampled_from([32, 4096])),
    )
    layout = default_layout(
        program.arrays, num_disks=data.draw(st.sampled_from([1, 4]))
    )
    chunk_requests = data.draw(st.sampled_from([1, 7, 64, 65536]))

    whole_stats: dict = {}
    whole = generate_trace(program, layout, opts, stats=whole_stats)
    chunk_stats: dict = {}
    chunks = list(
        generate_trace_chunks(
            program, layout, opts,
            chunk_requests=chunk_requests, stats=chunk_stats,
        )
    )
    # The chunk-size contract: every chunk but the last is exactly full.
    for c in chunks[:-1]:
        assert len(c) == chunk_requests
    if chunks:
        assert 0 < len(chunks[-1]) <= chunk_requests
    got = _concat(chunks)
    if got is None:
        assert whole.num_requests == 0
    else:
        _assert_columns_identical(got, whole.columns)
    assert chunk_stats == whole_stats  # cache hits/misses fold exactly


@pytest.mark.parametrize("workload", all_workloads()[:2], ids=lambda w: w.name)
def test_bundled_workload_chunked_identical(workload):
    """Two real Table 2 workloads through an awkward chunk size."""
    layout = default_layout(workload.program.arrays, num_disks=4)
    whole = generate_trace(workload.program, layout, workload.trace_options)
    got = _concat(
        generate_trace_chunks(
            workload.program, layout, workload.trace_options,
            chunk_requests=1000,
        )
    )
    _assert_columns_identical(got, whole.columns)


# --------------------------------------------------------------------- #
# stream_trace: re-iterability and argument validation.
# --------------------------------------------------------------------- #
def test_stream_trace_is_reiterable(tiny_program, tiny_layout, small_trace_options):
    stream = stream_trace(
        tiny_program, tiny_layout, small_trace_options, chunk_requests=64
    )
    first = _concat(stream.iter_chunks())
    second = _concat(stream.iter_chunks())
    _assert_columns_identical(first, second)
    whole = generate_trace(tiny_program, tiny_layout, small_trace_options)
    _assert_columns_identical(first, whole.columns)
    assert stream.total_compute_s == whole.total_compute_s
    assert stream.program_name == whole.program_name


def test_chunk_requests_must_be_positive(tiny_program, tiny_layout):
    with pytest.raises(TraceError, match="chunk_requests"):
        list(generate_trace_chunks(tiny_program, tiny_layout, chunk_requests=0))


def test_one_shot_stream_guard(tiny_program, tiny_layout, small_trace_options):
    """A TraceStream built from a plain iterable refuses a second pass
    with an actionable error instead of silently yielding nothing."""
    chunks = list(
        generate_trace_chunks(
            tiny_program, tiny_layout, small_trace_options, chunk_requests=64
        )
    )
    stream = TraceStream(
        tiny_program.name, tiny_layout, 0.0, chunks=iter(chunks)
    )
    assert _concat(stream.iter_chunks()) is not None
    with pytest.raises(TraceError, match="one-shot"):
        stream.iter_chunks()


def test_with_directives_rejects_unordered_construction(tiny_layout):
    with pytest.raises(TraceError, match="ordered"):
        TraceStream(
            "p", tiny_layout, 0.0, chunks=lambda: iter(()),
            directives=_two_directives(reverse=True),
        )


def _two_directives(reverse: bool = False):
    from repro.ir.nodes import PowerAction, PowerCall
    from repro.trace.request import DirectiveRecord

    records = (
        DirectiveRecord(0.5, PowerCall(PowerAction.SPIN_DOWN, disk=0)),
        DirectiveRecord(1.5, PowerCall(PowerAction.SPIN_UP, disk=0)),
    )
    return records[::-1] if reverse else records


# --------------------------------------------------------------------- #
# Trace-file streaming reader.
# --------------------------------------------------------------------- #
def test_tracefile_chunked_read_matches_whole(
    tmp_path, tiny_program, tiny_layout, small_trace_options
):
    trace = generate_trace(tiny_program, tiny_layout, small_trace_options)
    path = tmp_path / "t.trace"
    write_trace(trace, path)

    whole = read_trace(path, tiny_layout)
    got = _concat(read_trace_chunks(path, tiny_layout, chunk_requests=17))
    assert got is not None
    assert len(got) == whole.num_requests
    # The chunked reader fixes array-id order to the layout's entry order,
    # so compare the resolved per-request fields, not the raw id columns.
    assert got.materialize() == whole.requests

    streamed = stream_trace_file(path, tiny_layout, chunk_requests=17)
    assert streamed.program_name == tiny_program.name
    params = SubsystemParams(num_disks=tiny_layout.num_disks)
    res_s = simulate(streamed, params, engine="segmented")
    res_w = simulate(whole, params, engine="stepwise")
    assert res_s.execution_time_s == res_w.execution_time_s
    assert res_s.disk_stats == res_w.disk_stats
    assert res_s.num_requests == res_w.num_requests


def test_tracefile_chunked_read_rejects_bad_lines(tmp_path, tiny_layout):
    path = tmp_path / "bad.trace"
    path.write_text("0.0 0 8192\n")  # 3 fields, not 4
    with pytest.raises(TraceError, match="expected 4 fields"):
        list(read_trace_chunks(path, tiny_layout))
