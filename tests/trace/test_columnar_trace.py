"""Columnar request storage: sharing, laziness, validation, round trips."""

import pickle

import numpy as np
import pytest

from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import DirectiveRecord, IORequest, RequestColumns, Trace
from repro.ir.nodes import PowerAction, PowerCall
from repro.util.errors import TraceError
from repro.util.units import KB


def _layout():
    return SubsystemLayout(
        num_disks=2,
        entries=(
            FileEntry("A", 256 * KB, Striping(0, 2, 64 * KB), 0),
            FileEntry("B", 256 * KB, Striping(0, 2, 64 * KB), 512),
        ),
    )


def _requests():
    return (
        IORequest(0.0, "A", 0, 512, False, nest=0, iteration=0),
        IORequest(0.5, "B", 8192, 1024, True, nest=0, iteration=1),
        IORequest(1.5, "A", 4096, 512, False, nest=1, iteration=0),
    )


def _trace():
    return Trace("t", _layout(), _requests(), (), 5.0)


def _directive(t):
    return DirectiveRecord(t, PowerCall(PowerAction.SPIN_DOWN, 0))


def test_object_round_trip_and_columns():
    reqs = _requests()
    tr = Trace("t", _layout(), reqs, (), 5.0)
    assert tr.requests == reqs
    assert tr.num_requests == 3
    cols = tr.columns
    assert cols.nominal_time_s.tolist() == [0.0, 0.5, 1.5]
    assert cols.offset.tolist() == [0, 8192, 4096]
    assert cols.nbytes.tolist() == [512, 1024, 512]
    assert cols.is_write.tolist() == [False, True, False]
    assert tr.request_nests.tolist() == [0, 0, 1]
    assert tr.request_times.tolist() == [0.0, 0.5, 1.5]
    assert cols.array_name_per_request().tolist() == ["A", "B", "A"]


def test_with_directives_shares_columns_and_objects():
    tr = _trace()
    derived = tr.with_directives([_directive(0.25)])
    assert derived.columns is tr.columns
    # Materialization is cached on the shared columns: every copy sees the
    # exact same object tuple, built at most once.
    assert derived.requests is tr.requests
    assert derived.directives == (_directive(0.25),)
    assert tr.directives == ()
    # Unsorted input is sorted on attach.
    d2 = tr.with_directives([_directive(2.0), _directive(0.5)])
    assert [d.nominal_time_s for d in d2.directives] == [0.5, 2.0]


def test_total_bytes_cached():
    tr = _trace()
    assert tr.total_bytes == 512 + 1024 + 512
    assert tr.columns._total_bytes == 2048  # computed once, then cached
    assert tr.total_bytes == 2048


def test_validation_rejects_bad_columns():
    with pytest.raises(TraceError):
        RequestColumns(
            nominal_time_s=[1.0, 0.0],  # regressing times
            array_id=[0, 0],
            offset=[0, 0],
            nbytes=[1, 1],
            is_write=[False, False],
            nest=[0, 0],
            iteration=[0, 0],
            array_names=("A",),
        )
    with pytest.raises(TraceError):
        RequestColumns(
            nominal_time_s=[0.0],
            array_id=[0],
            offset=[-1],  # negative offset
            nbytes=[1],
            is_write=[False],
            nest=[0],
            iteration=[0],
            array_names=("A",),
        )
    with pytest.raises(TraceError):
        RequestColumns(
            nominal_time_s=[0.0],
            array_id=[0],
            offset=[0],
            nbytes=[0],  # empty request
            is_write=[False],
            nest=[0],
            iteration=[0],
            array_names=("A",),
        )
    with pytest.raises(TraceError):
        RequestColumns(
            nominal_time_s=[0.0],
            array_id=[1],  # id beyond the name table
            offset=[0],
            nbytes=[1],
            is_write=[False],
            nest=[0],
            iteration=[0],
            array_names=("A",),
        )


def test_requests_and_columns_are_mutually_exclusive():
    with pytest.raises(TraceError):
        Trace(
            "t",
            _layout(),
            _requests(),
            (),
            5.0,
            columns=RequestColumns.from_requests(_requests()),
        )


def test_equality_across_different_id_spaces():
    """Two column sets naming the same per-request arrays are equal even if
    their id tables were built in different orders."""
    a = RequestColumns(
        nominal_time_s=[0.0, 1.0],
        array_id=[0, 1],
        offset=[0, 0],
        nbytes=[8, 8],
        is_write=[False, False],
        nest=[0, 0],
        iteration=[0, 0],
        array_names=("A", "B"),
    )
    b = RequestColumns(
        nominal_time_s=[0.0, 1.0],
        array_id=[1, 0],
        offset=[0, 0],
        nbytes=[8, 8],
        is_write=[False, False],
        nest=[0, 0],
        iteration=[0, 0],
        array_names=("B", "A"),
    )
    assert a == b
    c = RequestColumns(
        nominal_time_s=[0.0, 1.0],
        array_id=[0, 0],
        offset=[0, 0],
        nbytes=[8, 8],
        is_write=[False, False],
        nest=[0, 0],
        iteration=[0, 0],
        array_names=("A", "B"),
    )
    assert a != c


def test_pickle_drops_materialized_objects():
    tr = _trace()
    _ = tr.requests  # force materialization
    assert tr.columns._objects is not None
    rt = pickle.loads(pickle.dumps(tr))
    assert rt.columns._objects is None  # compact on the wire
    assert rt == tr
    assert rt.requests == tr.requests  # re-materializes on demand


def test_directive_ordering_still_validated():
    with pytest.raises(TraceError):
        Trace("t", _layout(), _requests(), (_directive(1.0), _directive(0.0)), 5.0)
