"""Controller interface defaults and oracle directive conversion."""

import pytest

from repro.analysis.idle import IdleGap
from repro.controllers.base import Controller, TimedDirective
from repro.controllers.oracle import decisions_to_directives
from repro.disksim.params import DiskParams, DRPMParams
from repro.disksim.powermodel import PowerModel
from repro.ir.nodes import PowerAction
from repro.power.planner import plan_drpm_gap, plan_tpm_gap


@pytest.fixture()
def pm():
    return PowerModel(DiskParams(), DRPMParams())


def test_base_controller_is_inert(pm):
    c = Controller()
    assert c.name == "Base"
    assert c.auto_spindown_threshold_s is None
    assert list(c.timed_directives()) == []
    # The hook is a no-op and must accept the full signature.
    c.prepare(4, pm)
    c.on_request_complete(None, 0.0, 0.0, 1.0, 4096, "seq")  # type: ignore[arg-type]


def test_decisions_to_directives_tpm(pm):
    gap = IdleGap(disk=2, start_s=10.0, end_s=40.0)
    dec = plan_tpm_gap(gap, pm)
    assert dec.acts
    directives = decisions_to_directives([dec], pm)
    assert [d.call.action for d in directives] == [
        PowerAction.SPIN_DOWN,
        PowerAction.SPIN_UP,
    ]
    assert directives[0].time_s == pytest.approx(10.0)
    assert directives[1].time_s == pytest.approx(40.0 - pm.spin_up_time_s)
    assert all(d.call.disk == 2 for d in directives)


def test_decisions_to_directives_drpm_trailing(pm):
    gap = IdleGap(disk=1, start_s=5.0, end_s=60.0, trailing=True)
    dec = plan_drpm_gap(gap, pm)
    directives = decisions_to_directives([dec], pm)
    assert len(directives) == 1  # no return transition for a trailing gap
    assert directives[0].call.action is PowerAction.SET_RPM
    assert directives[0].call.rpm == 3000


def test_decisions_to_directives_skips_inert(pm):
    gap = IdleGap(disk=0, start_s=0.0, end_s=0.01)
    dec = plan_drpm_gap(gap, pm)
    assert not dec.acts
    assert decisions_to_directives([dec], pm) == []


def test_directives_sorted_across_disks(pm):
    gaps = [
        IdleGap(disk=0, start_s=50.0, end_s=80.0),
        IdleGap(disk=1, start_s=10.0, end_s=40.0),
    ]
    decisions = [plan_drpm_gap(g, pm) for g in gaps]
    directives = decisions_to_directives(decisions, pm)
    times = [d.time_s for d in directives]
    assert times == sorted(times)


def test_timed_directive_is_frozen():
    from repro.ir.nodes import PowerCall

    td = TimedDirective(1.0, PowerCall(PowerAction.SPIN_UP, 0))
    with pytest.raises(Exception):
        td.time_s = 2.0  # type: ignore[misc]
