"""Reactive TPM controller behaviour inside the replay engine."""

import pytest

from repro.controllers.tpm import ReactiveTPM
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import IORequest, Trace
from repro.util.units import KB


def _layout():
    return SubsystemLayout(
        num_disks=2, entries=(FileEntry("A", 1024 * KB, Striping(0, 2, 64 * KB), 0),)
    )


def test_threshold_validation():
    with pytest.raises(ValueError):
        ReactiveTPM(0.0)


def test_no_spindown_when_gaps_below_threshold(params):
    lay = _layout()
    # Requests every 1 s; threshold 2 s: never idle long enough.
    reqs = [IORequest(float(t), "A", 0, 8 * KB, False) for t in range(5)]
    p = SubsystemParams(num_disks=2, tpm_idleness_threshold_s=2.0)
    res = simulate(Trace("t", lay, tuple(reqs), (), 5.0), p, ReactiveTPM(2.0))
    # Disk 0 (hit every second) never idles past the threshold; disk 1 is
    # never accessed at all, so it legitimately spins down.
    assert res.disk_stats[0].num_spin_downs == 0
    assert res.disk_stats[1].num_spin_downs == 1
    base = simulate(Trace("t", lay, tuple(reqs), (), 5.0), p)
    assert res.execution_time_s == pytest.approx(base.execution_time_s)


def test_spindown_and_penalty_on_long_gap():
    lay = _layout()
    reqs = (
        IORequest(0.0, "A", 0, 8 * KB, False),
        IORequest(30.0, "A", 0, 8 * KB, False),
    )
    p = SubsystemParams(num_disks=2, tpm_idleness_threshold_s=2.0)
    ctrl = ReactiveTPM(2.0)
    res = simulate(Trace("t", lay, reqs, (), 31.0), p, ctrl)
    base = simulate(Trace("t", lay, reqs, (), 31.0), p)
    # The disk holding A's first stripe spun down after 2 s idle; disk 1
    # (never accessed) also spun down.
    assert res.total_spin_downs == 2
    assert res.total_spin_ups == 1  # only the accessed disk wakes
    # The second request pays the 10.9 s spin-up.
    penalty = res.execution_time_s - base.execution_time_s
    assert penalty == pytest.approx(10.9, abs=0.1)


def test_energy_saved_when_gap_exceeds_breakeven():
    lay = _layout()
    gap = 60.0
    reqs = (
        IORequest(0.0, "A", 0, 8 * KB, False),
        IORequest(gap, "A", 0, 8 * KB, False),
    )
    p = SubsystemParams(num_disks=2, tpm_idleness_threshold_s=2.0)
    res = simulate(Trace("t", lay, reqs, (), gap + 1), p, ReactiveTPM(2.0))
    base = simulate(Trace("t", lay, reqs, (), gap + 1), p)
    assert res.total_energy_j < base.total_energy_j


def test_default_threshold_never_fires_on_paper_workloads():
    """With the break-even threshold and second-scale gaps, reactive TPM is
    inert — paper Figure 3/4's flat TPM bars."""
    lay = _layout()
    reqs = tuple(IORequest(t * 5.0, "A", 0, 8 * KB, False) for t in range(4))
    p = SubsystemParams(num_disks=2)  # threshold = break-even ~15.2 s
    res = simulate(
        Trace("t", lay, reqs, (), 16.0), p, ReactiveTPM(p.effective_tpm_threshold_s)
    )
    assert res.disk_stats[0].num_spin_downs == 0
