"""Reactive DRPM window heuristic."""

import pytest

from repro.controllers.drpm import ReactiveDRPM
from repro.disksim.params import DRPMParams, SubsystemParams
from repro.disksim.simulator import simulate
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import IORequest, Trace
from repro.util.units import KB


def _layout(num_disks=1):
    return SubsystemLayout(
        num_disks=num_disks,
        entries=(FileEntry("A", 4096 * KB, Striping(0, num_disks, 64 * KB), 0),),
    )


def _uniform_trace(lay, n, spacing=0.05, nbytes=8 * KB):
    reqs = tuple(
        IORequest(i * spacing, "A", (i * nbytes) % (4096 * KB), nbytes, False)
        for i in range(n)
    )
    return Trace("t", lay, reqs, (), n * spacing)


def test_ratchets_down_under_steady_load():
    lay = _layout()
    p = SubsystemParams(num_disks=1)
    drpm = DRPMParams(window_size=10)
    res = simulate(_uniform_trace(lay, 200), p, ReactiveDRPM(drpm))
    assert res.total_rpm_shifts > 0
    # Some idle/active time spent below full speed.
    ds = res.disk_stats[0]
    below = {r: t for r, t in ds.idle_time_by_rpm.items() if r < 15000}
    assert below, "controller never descended"


def test_descent_is_one_level_at_a_time():
    """Track the level after each window: it only ever falls by one step or
    recovers to the max."""
    lay = _layout()
    p = SubsystemParams(num_disks=1)
    drpm = DRPMParams(window_size=10)
    ctrl = ReactiveDRPM(drpm)
    levels = []

    class Spy(ReactiveDRPM):
        def on_request_complete(self, disk, *a, **k):
            super().on_request_complete(disk, *a, **k)
            levels.append(disk.rpm)

    res = simulate(_uniform_trace(lay, 150), p, Spy(drpm))
    changes = {
        (a, b) for a, b in zip(levels, levels[1:]) if a != b
    }
    for a, b in changes:
        assert b == 15000 or drpm.level_index(a) - drpm.level_index(b) == 1


def test_recovery_after_degradation():
    """Once the marginal slowdown of another step crosses the upper
    tolerance, the disk snaps back to full speed at least once."""
    lay = _layout()
    p = SubsystemParams(num_disks=1)
    drpm = DRPMParams(window_size=5)
    ctrl = ReactiveDRPM(drpm)
    res = simulate(_uniform_trace(lay, 400), p, ctrl)
    ds = res.disk_stats[0]
    # Sawtooth: several descents plus at least one jump back up.
    assert ds.num_rpm_shifts >= drpm.num_levels


def test_slowdown_penalty_shows_in_execution_time():
    lay = _layout()
    p = SubsystemParams(num_disks=1)
    drpm = DRPMParams(window_size=10)
    base = simulate(_uniform_trace(lay, 300), p)
    res = simulate(_uniform_trace(lay, 300), p, ReactiveDRPM(drpm))
    assert res.execution_time_s > base.execution_time_s


def test_no_requests_no_actions():
    lay = _layout()
    p = SubsystemParams(num_disks=1)
    res = simulate(Trace("t", lay, (), (), 10.0), p, ReactiveDRPM(DRPMParams()))
    assert res.total_rpm_shifts == 0
    assert res.disk_stats[0].idle_time_by_rpm.get(15000, 0) == pytest.approx(10.0)


def test_controller_requires_prepare():
    ctrl = ReactiveDRPM(DRPMParams())
    with pytest.raises(AssertionError):
        ctrl.on_request_complete(None, 0, 0, 1, 8 * KB)  # type: ignore[arg-type]
