"""Oracle controllers (ITPM / IDRPM)."""

import pytest

from repro.controllers.base import Controller
from repro.controllers.oracle import (
    OracleDRPM,
    OracleTPM,
    oracle_decisions,
    realized_idle_gaps,
)
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import IORequest, Trace
from repro.util.errors import SimulationError
from repro.util.units import KB


def _layout(num_disks=2):
    return SubsystemLayout(
        num_disks=num_disks,
        entries=(FileEntry("A", 1024 * KB, Striping(0, num_disks, 64 * KB), 0),),
    )


def _bursty_trace(lay, gap_s=8.0):
    """Burst, long gap, burst — every disk gets one exploitable interior
    gap.  Execution ends right after the second burst (no long trailing
    idle period, which even a sub-break-even interior gap setup would hand
    to ITPM as a spin-down opportunity)."""
    reqs = []
    t = 0.0
    for burst in range(2):
        for k in range(16):
            reqs.append(IORequest(t, "A", k * 64 * KB, 8 * KB, False))
        t += gap_s
    return Trace("t", lay, tuple(reqs), (), t - gap_s + 0.2)


@pytest.fixture()
def two_disk_params():
    return SubsystemParams(num_disks=2)


def test_realized_gaps_require_busy_intervals(two_disk_params):
    lay = _layout()
    base = simulate(_bursty_trace(lay), two_disk_params)  # no collection
    with pytest.raises(SimulationError):
        realized_idle_gaps(base, 0.1)


def test_realized_gaps_structure(two_disk_params):
    lay = _layout()
    base = simulate(
        _bursty_trace(lay), two_disk_params, collect_busy_intervals=True
    )
    gaps = realized_idle_gaps(base, 0.1)
    assert len(gaps) == 2
    for disk_gaps in gaps:
        # One interior gap (~8 s) per disk; possibly lead/trail slivers.
        assert any(7.0 < g.duration_s < 9.0 for g in disk_gaps)


def test_idrpm_saves_energy_without_slowdown(two_disk_params):
    lay = _layout()
    trace = _bursty_trace(lay)
    base = simulate(trace, two_disk_params, collect_busy_intervals=True)
    res = simulate(trace, two_disk_params, OracleDRPM(base, two_disk_params))
    assert res.total_energy_j < base.total_energy_j
    assert res.execution_time_s == pytest.approx(base.execution_time_s, rel=1e-6)
    assert res.total_rpm_shifts > 0


def test_itpm_inert_below_breakeven(two_disk_params):
    lay = _layout()
    trace = _bursty_trace(lay, gap_s=8.0)  # << 15.2 s break-even
    base = simulate(trace, two_disk_params, collect_busy_intervals=True)
    ctrl = OracleTPM(base, two_disk_params)
    res = simulate(trace, two_disk_params, ctrl)
    assert res.total_spin_downs == 0
    assert res.total_energy_j == pytest.approx(base.total_energy_j)


def test_itpm_acts_above_breakeven(two_disk_params):
    lay = _layout()
    trace = _bursty_trace(lay, gap_s=40.0)
    base = simulate(trace, two_disk_params, collect_busy_intervals=True)
    res = simulate(trace, two_disk_params, OracleTPM(base, two_disk_params))
    assert res.total_spin_downs >= 2
    assert res.total_energy_j < base.total_energy_j
    # Oracle pre-activates: no measurable slowdown.
    assert res.execution_time_s == pytest.approx(base.execution_time_s, rel=1e-6)


def test_oracle_decisions_cover_all_disks(two_disk_params):
    lay = _layout()
    trace = _bursty_trace(lay)
    base = simulate(trace, two_disk_params, collect_busy_intervals=True)
    decisions = oracle_decisions(base, two_disk_params, "drpm")
    assert {d.gap.disk for d in decisions} == {0, 1}
    assert any(d.acts for d in decisions)


def test_idrpm_beats_any_single_fixed_level(two_disk_params):
    """The oracle is at least as good as naively parking at any one level
    for the whole run (which would slow requests down)."""
    lay = _layout()
    trace = _bursty_trace(lay)
    base = simulate(trace, two_disk_params, collect_busy_intervals=True)
    oracle = simulate(trace, two_disk_params, OracleDRPM(base, two_disk_params))
    assert oracle.execution_time_s <= base.execution_time_s * (1 + 1e-9)
