"""Adaptive-threshold TPM (paper §2's 'adaptive threshold based strategies')."""

import pytest

from repro.controllers.tpm import AdaptiveTPM
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import IORequest, Trace
from repro.util.units import KB


def _layout():
    return SubsystemLayout(
        num_disks=1, entries=(FileEntry("A", 1024 * KB, Striping(0, 1, 64 * KB), 0),)
    )


def _periodic_trace(lay, period_s, n):
    reqs = tuple(IORequest(i * period_s, "A", 0, 8 * KB, False) for i in range(n))
    return Trace("t", lay, reqs, (), n * period_s)


def test_validation():
    with pytest.raises(ValueError):
        AdaptiveTPM(initial_threshold_s=0.0)


def test_threshold_backs_off_under_thrash():
    """Requests every 20 s with a 2 s initial threshold: fixed TPM would
    spin down (and pay 10.9 s) every period; the adaptive policy stops."""
    lay = _layout()
    p = SubsystemParams(num_disks=1)
    trace = _periodic_trace(lay, 20.0, 30)
    fixed_like = simulate(trace, p, AdaptiveTPM(initial_threshold_s=2.0, refractory_spin_ups=10.0))
    # After a few doublings the threshold exceeds the 20 s period: far
    # fewer wakes than the 30 a fixed 2 s threshold would cause.
    assert fixed_like.total_spin_ups < 10
    base = simulate(trace, p)
    # And the execution-time damage is bounded (not one spin-up per request).
    assert fixed_like.execution_time_s < base.execution_time_s + 8 * 11.0


def test_threshold_stays_low_for_genuinely_long_gaps():
    """Requests every 200 s: every spin-down is profitable and isolated, so
    the policy keeps acting and saves energy."""
    lay = _layout()
    p = SubsystemParams(num_disks=1)
    trace = _periodic_trace(lay, 200.0, 8)
    res = simulate(trace, p, AdaptiveTPM(initial_threshold_s=15.2))
    base = simulate(trace, p)
    assert res.total_spin_downs >= 7
    assert res.total_energy_j < 0.6 * base.total_energy_j


def test_per_disk_learning_is_independent():
    lay = SubsystemLayout(
        num_disks=2,
        entries=(
            FileEntry("HOT", 512 * KB, Striping(0, 1, 64 * KB), 0),
            FileEntry("COLD", 512 * KB, Striping(1, 1, 64 * KB), 1024),
        ),
    )
    p = SubsystemParams(num_disks=2)
    reqs = tuple(
        IORequest(i * 20.0, "HOT", 0, 8 * KB, False) for i in range(20)
    ) + (IORequest(400.0, "COLD", 0, 8 * KB, False),)
    trace = Trace("t", lay, tuple(sorted(reqs, key=lambda r: r.nominal_time_s)), (), 401.0)
    ctrl = AdaptiveTPM(initial_threshold_s=2.0)
    res = simulate(trace, p, ctrl)
    # Disk 0 learns to stop thrashing; disk 1 spins down once, profitably.
    assert res.disk_stats[0].num_spin_ups < 10
    assert res.disk_stats[1].num_spin_downs >= 1


def test_last_standby_tracked_on_disk(power_model):
    from repro.disksim.disk import Disk

    d = Disk(0, power_model)
    d.spin_down(0.0)
    d.serve(50.0, 8 * KB)
    # Standby began at 1.5 (spin-down complete) and ended at 50.
    assert d.last_standby_s == pytest.approx(48.5)
