"""Idle-gap extraction."""

import pytest

from repro.analysis.dap import ActiveInterval
from repro.analysis.idle import IdleGap, idle_gaps_from_intervals, total_idle_time
from repro.util.errors import AnalysisError


def _iv(disk, start, end):
    return ActiveInterval(disk, start, end, 0, 0, 0, 0)


def test_gaps_complement_intervals():
    gaps = idle_gaps_from_intervals(
        [_iv(0, 1.0, 2.0), _iv(0, 4.0, 5.0)], disk=0, horizon_s=10.0
    )
    spans = [(g.start_s, g.end_s, g.trailing) for g in gaps]
    assert spans == [(0.0, 1.0, False), (2.0, 4.0, False), (5.0, 10.0, True)]
    assert total_idle_time(gaps) == pytest.approx(8.0)


def test_min_gap_filters_short():
    gaps = idle_gaps_from_intervals(
        [_iv(0, 1.0, 2.0), _iv(0, 2.5, 9.9)], disk=0, horizon_s=10.0, min_gap_s=0.6
    )
    assert [(g.start_s, g.end_s) for g in gaps] == [(0.0, 1.0)]


def test_idle_disk_is_one_trailing_gap():
    gaps = idle_gaps_from_intervals([], disk=2, horizon_s=7.0)
    assert len(gaps) == 1
    assert gaps[0].trailing
    assert gaps[0].duration_s == pytest.approx(7.0)


def test_wrong_disk_rejected():
    with pytest.raises(AnalysisError):
        idle_gaps_from_intervals([_iv(1, 0, 1)], disk=0, horizon_s=5.0)


def test_unsorted_intervals_rejected():
    with pytest.raises(AnalysisError):
        idle_gaps_from_intervals(
            [_iv(0, 3.0, 4.0), _iv(0, 1.0, 2.0)], disk=0, horizon_s=5.0
        )


def test_gap_validation():
    with pytest.raises(AnalysisError):
        IdleGap(disk=0, start_s=2.0, end_s=1.0)
    g = IdleGap(disk=0, start_s=1.0, end_s=3.5)
    assert g.duration_s == pytest.approx(2.5)
