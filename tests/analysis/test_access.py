"""Access-pattern extraction (footprints and disk-activity matrices)."""

import numpy as np
import pytest

from repro.analysis.access import analyze_nest, analyze_program
from repro.ir.builder import ProgramBuilder
from repro.layout.files import default_layout
from repro.util.units import KB


def _sweep_program(rows=16, width=8192):
    """Row sweep of a 2-D array; one row is exactly one 64 KB stripe."""
    b = ProgramBuilder("p")
    A = b.array("A", (rows, width))  # width*8 bytes per row = 64 KB
    with b.nest("i", 0, rows) as i:
        with b.loop("j", 0, width) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
    return b.build()


def test_footprint_base_and_coeffs():
    prog = _sweep_program()
    acc = analyze_nest(prog.nest(0))
    assert len(acc.footprints) == 1
    fp = acc.footprints[0]
    assert fp.outer_coeffs == (1, 0)
    assert fp.base.intervals == ((0, 1), (0, 8192))
    assert fp.executions_per_outer_iter == 8192


def test_region_at_translates():
    prog = _sweep_program()
    fp = analyze_nest(prog.nest(0)).footprints[0]
    r5 = fp.region_at(5)
    assert r5.intervals == ((5, 6), (0, 8192))


def test_region_over_range():
    prog = _sweep_program()
    fp = analyze_nest(prog.nest(0)).footprints[0]
    assert fp.region_over(2, 5).intervals == ((2, 6), (0, 8192))
    with pytest.raises(Exception):
        fp.region_over(5, 2)


def test_flat_shift_per_outer_iter():
    prog = _sweep_program()
    fp = analyze_nest(prog.nest(0)).footprints[0]
    assert fp.flat_shift_per_outer_iter() == 8192  # one row of elements


def test_total_region():
    prog = _sweep_program()
    acc = analyze_nest(prog.nest(0))
    assert acc.total_region("A").num_elements == 16 * 8192
    assert acc.total_region("missing") is None


def test_active_disk_matrix_round_robin():
    """One row == one stripe: iteration i touches exactly disk i mod 4."""
    prog = _sweep_program()
    lay = default_layout(prog.arrays, num_disks=4)
    mat = analyze_nest(prog.nest(0)).active_disk_matrix(lay)
    assert mat.shape == (16, 4)
    for i in range(16):
        expected = np.zeros(4, dtype=bool)
        expected[i % 4] = True
        assert np.array_equal(mat[i], expected), f"iteration {i}"


def test_active_disk_matrix_wide_rows_hit_all_disks():
    """A row spanning >= factor stripes touches every disk each iteration."""
    b = ProgramBuilder("p")
    A = b.array("A", (4, 4 * 8192))  # 256 KB rows over 4x64 KB stripes
    with b.nest("i", 0, 4) as i:
        with b.loop("j", 0, 4 * 8192) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4)
    mat = analyze_nest(prog.nest(0)).active_disk_matrix(lay)
    assert mat.all()


def test_active_disk_matrix_matches_bruteforce():
    """Cross-check the vectorized kernel against per-element enumeration."""
    b = ProgramBuilder("p")
    A = b.array("A", (8, 96))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 48) as j:
            b.stmt(reads=[A[i, 2 * j + 1]], cycles=1)
    prog = b.build()
    lay = default_layout(prog.arrays, num_disks=4, stripe_size=128)
    acc = analyze_nest(prog.nest(0))
    mat = acc.active_disk_matrix(lay)
    striping = lay.striping("A")
    arr = prog.array("A")
    for i in range(8):
        disks = set()
        for j in range(48):
            flat = int(arr.linearize((i, 2 * j + 1)))
            disks |= striping.disks_for_extent(flat * 8, 8)
        expected = np.zeros(4, dtype=bool)
        expected[list(disks)] = True
        assert np.array_equal(mat[i], expected), f"iteration {i}"


def test_analyze_program_covers_all_nests(tiny_program):
    accs = analyze_program(tiny_program)
    assert [a.nest_index for a in accs] == [0, 1]
    assert accs[0].arrays == {"A", "B"}
    assert accs[1].arrays == {"B"}


def test_column_access_footprint_is_column():
    b = ProgramBuilder("p")
    A = b.array("A", (16, 16))
    with b.nest("c", 0, 16) as c:
        with b.loop("r", 0, 16) as r:
            b.stmt(reads=[A[r, c]], cycles=1)
    fp = analyze_nest(b.build().nest(0)).footprints[0]
    assert fp.outer_coeffs == (0, 1)
    assert fp.base.intervals == ((0, 16), (0, 1))
    assert fp.flat_shift_per_outer_iter() == 1


def test_footprint_exactness_predicate():
    """is_exact distinguishes separable references (exact rectangles) from
    dimension-correlated ones (bounding boxes)."""
    b = ProgramBuilder("p")
    A = b.array("A", (64, 64))
    with b.nest("i", 0, 16) as i:
        with b.loop("j", 0, 16) as j:
            b.stmt(reads=[A[i, j]], cycles=1, label="sep")
            b.stmt(reads=[A[i + j, j]], cycles=1, label="coupled")
    acc = analyze_nest(b.build().nest(0))
    by_label = {fp.ref.array.name + str(fp.base): fp for fp in acc.footprints}
    exact = [fp.is_exact for fp in acc.footprints]
    assert exact == [True, False]


def test_coupled_footprint_is_safe_overapproximation():
    """The bounding-box footprint of A[i+j][j] contains every accessed
    element (never misses one) — the safety direction the compiler needs."""
    b = ProgramBuilder("p")
    A = b.array("A", (64, 64))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i + j, j]], cycles=1)
    fp = analyze_nest(b.build().nest(0)).footprints[0]
    for v in range(8):
        region = fp.region_at(v)
        for j in range(8):
            assert region.contains_point((v + j, j))
