"""Cycle/timing model: actual, measured, and estimated timelines."""

import numpy as np
import pytest

from repro.analysis.cycles import (
    EstimationModel,
    compute_timing,
    loop_body_cycles,
    measured_timing,
    scale_timing,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.nodes import Loop, PowerAction, PowerCall, Statement
from repro.util.errors import AnalysisError


def _prog():
    b = ProgramBuilder("p", clock_hz=1000.0)  # 1 kHz for round numbers
    A = b.array("A", (8, 4))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 4) as j:
            b.stmt(reads=[A[i, j]], cycles=10)  # 40 cycles per outer iter
    with b.nest("k", 0, 2) as k:
        b.stmt(reads=[A[k, 0]], cycles=100)
    return b.build()


def test_loop_body_cycles_nested():
    prog = _prog()
    assert loop_body_cycles(prog.nest(0)) == 40
    assert loop_body_cycles(prog.nest(1)) == 100


def test_loop_body_cycles_includes_power_call_overhead():
    stmt = Statement((), cost_cycles=0) if False else None
    loop = Loop("i", 0, 4, (PowerCall(PowerAction.SPIN_DOWN, 0, overhead_cycles=25),))
    assert loop_body_cycles(loop) == 25


def test_compute_timing_timeline():
    t = compute_timing(_prog())
    n0, n1 = t.nests
    assert n0.seconds_per_iteration == pytest.approx(0.04)
    assert n0.total_seconds == pytest.approx(0.32)
    assert n1.start_s == pytest.approx(0.32)
    assert t.total_seconds == pytest.approx(0.32 + 0.2)
    assert n0.iteration_start_s(3) == pytest.approx(0.12)
    with pytest.raises(AnalysisError):
        n0.iteration_start_s(9)


def test_compute_timing_with_scale():
    t = compute_timing(_prog(), scale=np.array([2.0, 0.5]))
    assert t.nests[0].total_seconds == pytest.approx(0.64)
    assert t.nests[1].total_seconds == pytest.approx(0.1)


def test_scale_timing_rebuilds_starts():
    base = compute_timing(_prog())
    scaled = scale_timing(base, np.array([2.0, 1.0]))
    assert scaled.nests[1].start_s == pytest.approx(0.64)
    with pytest.raises(AnalysisError):
        scale_timing(base, np.array([1.0]))


def test_measured_timing_adds_io_per_nest():
    prog = _prog()
    nests = [0, 0, 1]
    responses = [0.01, 0.03, 0.5]
    t = measured_timing(prog, nests, responses)
    assert t.nests[0].total_seconds == pytest.approx(0.32 + 0.04)
    assert t.nests[1].total_seconds == pytest.approx(0.2 + 0.5)
    # Per-iteration smearing.
    assert t.nests[0].seconds_per_iteration == pytest.approx(0.36 / 8)


def test_measured_timing_validates():
    prog = _prog()
    with pytest.raises(AnalysisError):
        measured_timing(prog, [0, 1], [0.1])
    with pytest.raises(AnalysisError):
        measured_timing(prog, [7], [0.1])


def test_estimation_model_deterministic_and_bounded():
    prog = _prog()
    m = EstimationModel(relative_error=0.2)
    f1, f2 = m.scale_factors(prog), m.scale_factors(prog)
    assert np.array_equal(f1, f2)
    assert ((f1 >= 0.8) & (f1 <= 1.2)).all()


def test_estimation_model_zero_error_is_exact():
    prog = _prog()
    m = EstimationModel(relative_error=0.0)
    assert np.array_equal(m.scale_factors(prog), np.ones(2))
    est = m.estimated_timing(prog)
    act = compute_timing(prog)
    assert est.total_seconds == pytest.approx(act.total_seconds)


def test_estimation_model_varies_by_program_name():
    m = EstimationModel(relative_error=0.2)
    b1 = _prog()
    b2 = ProgramBuilder("other", clock_hz=1000.0)
    A = b2.array("A", (4,))
    with b2.nest("i", 0, 4) as i:
        b2.stmt(reads=[A[i]], cycles=1)
    with b2.nest("j", 0, 4) as j:
        b2.stmt(reads=[A[j]], cycles=1)
    assert not np.array_equal(m.scale_factors(b1), m.scale_factors(b2.build()))


def test_estimation_model_rejects_bad_error():
    with pytest.raises(AnalysisError):
        EstimationModel(relative_error=1.0)
    with pytest.raises(AnalysisError):
        EstimationModel(relative_error=-0.1)
