"""Rectangular region algebra and flat-extent computation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.regions import Region
from repro.ir.arrays import Array, StorageOrder
from repro.util.errors import AnalysisError


def test_basic_queries():
    r = Region(((0, 4), (2, 6)))
    assert r.rank == 2
    assert not r.is_empty
    assert r.num_elements == 16
    assert r.contains_point((3, 5))
    assert not r.contains_point((4, 2))
    assert Region(((2, 2),)).is_empty
    assert Region(((2, 2),)).num_elements == 0


def test_from_inclusive():
    assert Region.from_inclusive(((0, 3),)) == Region(((0, 4),))


def test_whole_and_empty():
    a = Array("A", (3, 5))
    assert Region.whole(a).num_elements == 15
    assert Region.empty(2).is_empty


def test_intersect_and_overlap():
    a = Region(((0, 4), (0, 4)))
    b = Region(((2, 6), (3, 8)))
    i = a.intersect(b)
    assert i == Region(((2, 4), (3, 4)))
    assert a.overlaps(b)
    assert not a.overlaps(Region(((4, 8), (0, 4))))
    with pytest.raises(AnalysisError):
        a.intersect(Region(((0, 1),)))


def test_contains_region():
    big = Region(((0, 10), (0, 10)))
    assert big.contains_region(Region(((2, 3), (4, 9))))
    assert big.contains_region(Region.empty(2))
    assert not big.contains_region(Region(((0, 11), (0, 1))))


def test_bounding_union():
    a = Region(((0, 2), (0, 2)))
    b = Region(((5, 6), (1, 3)))
    assert a.bounding_union(b) == Region(((0, 6), (0, 3)))
    assert a.bounding_union(Region.empty(2)) == a


def test_translate():
    r = Region(((0, 2), (1, 3))).translate((10, -1))
    assert r == Region(((10, 12), (0, 2)))


def test_flat_extents_full_rows_collapse():
    a = Array("A", (4, 8))
    ext = Region(((1, 3), (0, 8))).flat_extents(a)
    assert ext.num_runs == 1
    assert ext.starts.tolist() == [8]
    assert ext.lengths.tolist() == [16]


def test_flat_extents_partial_rows():
    a = Array("A", (4, 8))
    ext = Region(((1, 3), (2, 5))).flat_extents(a)
    assert ext.starts.tolist() == [10, 18]
    assert ext.lengths.tolist() == [3, 3]


def test_flat_extents_column_major():
    a = Array("A", (4, 8), order=StorageOrder.COLUMN_MAJOR)
    # A full column band is contiguous in column-major storage.
    ext = Region(((0, 4), (2, 5))).flat_extents(a)
    assert ext.num_runs == 1
    assert ext.starts.tolist() == [8]
    assert ext.lengths.tolist() == [12]


def test_flat_extents_single_column_of_row_major():
    a = Array("A", (4, 8))
    ext = Region(((0, 4), (3, 4))).flat_extents(a)
    assert ext.starts.tolist() == [3, 11, 19, 27]
    assert (ext.lengths == 1).all()


def test_flat_extents_whole_array():
    a = Array("A", (4, 8))
    ext = Region.whole(a).flat_extents(a)
    assert ext.num_runs == 1
    assert ext.total_elements == 32


def test_flat_extents_out_of_bounds():
    a = Array("A", (4, 8))
    with pytest.raises(AnalysisError):
        Region(((0, 5), (0, 8))).flat_extents(a)


def test_byte_extents_scale():
    a = Array("A", (4, 8), element_size=8)
    ext = Region(((0, 1), (0, 8))).flat_extents(a).byte_extents(8)
    assert ext.starts.tolist() == [0]
    assert ext.lengths.tolist() == [64]


regions_2d = st.tuples(
    st.integers(0, 5), st.integers(0, 5), st.integers(0, 7), st.integers(0, 7)
).map(lambda t: Region(((min(t[0], t[1]), max(t[0], t[1])),
                        (min(t[2], t[3]), max(t[2], t[3])))))


@given(regions_2d, regions_2d)
def test_intersection_element_sets(r1, r2):
    """Property: region intersection == set intersection of element tuples."""
    def points(r):
        (l0, h0), (l1, h1) = r.intervals
        return {(i, j) for i in range(l0, h0) for j in range(l1, h1)}

    assert points(r1.intersect(r2)) == points(r1) & points(r2)


@given(
    regions_2d,
    st.sampled_from([StorageOrder.ROW_MAJOR, StorageOrder.COLUMN_MAJOR]),
)
def test_flat_extents_cover_exactly_the_region(r, order):
    """Property: flat extents enumerate exactly the region's linearized
    elements, disjointly and in order."""
    a = Array("A", (6, 8), order=order)
    ext = r.flat_extents(a)
    covered = set()
    for s, ln in zip(ext.starts.tolist(), ext.lengths.tolist()):
        run = set(range(s, s + ln))
        assert not (covered & run), "runs overlap"
        covered |= run
    (l0, h0), (l1, h1) = r.intervals
    expected = {
        int(a.linearize((i, j)))
        for i in range(l0, h0)
        for j in range(l1, h1)
    }
    assert covered == expected
    assert ext.total_elements == r.num_elements
    assert np.all(np.diff(ext.starts) > 0) if ext.num_runs > 1 else True
