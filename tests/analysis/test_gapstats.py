"""Gap statistics: the quantitative form of §5.1's TPM explanation."""

import pytest

from repro.analysis.gapstats import (
    GapStatistics,
    exploitable_fractions,
    gap_statistics,
)
from repro.analysis.idle import IdleGap
from repro.disksim.params import SubsystemParams
from repro.disksim.powermodel import PowerModel
from repro.disksim.simulator import simulate
from repro.experiments.schemes import run_workload
from repro.workloads.registry import build_workload


def _gaps(*durs):
    out = []
    t = 0.0
    for d in durs:
        out.append(IdleGap(disk=0, start_s=t, end_s=t + d))
        t += d + 1.0
    return out


def test_statistics_summary():
    s = GapStatistics.from_gaps(_gaps(1.0, 2.0, 3.0, 10.0))
    assert s.count == 4
    assert s.total_s == pytest.approx(16.0)
    assert s.mean_s == pytest.approx(4.0)
    assert s.median_s == pytest.approx(2.5)
    assert s.max_s == pytest.approx(10.0)
    empty = GapStatistics.from_gaps([])
    assert empty.count == 0 and empty.total_s == 0.0


def test_paper_section_5_1_explanation_holds_on_galgel():
    """On the original codes: essentially no idle time sits in
    TPM-exploitable gaps, while most of it is DRPM-exploitable — the
    sentence 'the idle times ... are much smaller in length', quantified."""
    wl = build_workload("galgel")
    suite = run_workload(wl, schemes=("Base",))
    params = SubsystemParams()
    pm = PowerModel(params.disk, params.drpm)
    fracs = exploitable_fractions(suite.base, pm)
    assert fracs["tpm"] < 0.02
    assert fracs["drpm_any"] > 0.6
    assert fracs["drpm_full"] <= fracs["drpm_any"]
    stats = gap_statistics(suite.base)
    assert stats.max_s < params.disk.tpm_breakeven_s
    assert stats.count > 0


def test_transformed_code_creates_tpm_gaps():
    """After LF+DL the same metric flips: a meaningful share of idle time
    becomes TPM-exploitable — §6.2's 'transformations create such
    opportunities'."""
    from repro.experiments.schemes import run_schemes
    from repro.layout.files import default_layout
    from repro.transform.pipeline import make_version

    wl = build_workload("swim")
    lay = default_layout(wl.program.arrays, num_disks=8)
    tv = make_version("LF+DL", wl.program, lay)
    suite = run_schemes(
        tv.program, tv.layout, SubsystemParams(), wl.trace_options,
        wl.estimation, schemes=("Base",),
    )
    params = SubsystemParams()
    pm = PowerModel(params.disk, params.drpm)
    fracs = exploitable_fractions(suite.base, pm)
    assert fracs["tpm"] > 0.3
