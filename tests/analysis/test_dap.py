"""Disk access patterns: entries, timelines, timed intervals."""

import numpy as np
import pytest

from repro.analysis.cycles import compute_timing
from repro.analysis.dap import DiskAccessPattern, build_dap
from repro.util.errors import AnalysisError


def test_paper_style_entries(tiny_program, tiny_layout):
    """The tiny program reproduces the paper's Figure 2 DAP structure:
    nest 0 uses disks 0-1 (via A and B's first stripes), nest 1 uses the
    stripe holding B's third quarter."""
    dap = build_dap(tiny_program, tiny_layout)
    e0 = [str(e) for e in dap.entries(0)]
    assert e0[0] == "< Nest 0, iteration 0, active >"
    # Disk 3 never used.
    assert dap.entries(3) == []
    assert not dap.ever_active(3)
    assert dap.ever_active(0)


def test_utilization(tiny_program, tiny_layout):
    dap = build_dap(tiny_program, tiny_layout)
    # Disk 0: active for A[0:8192] and B[0:8192] writes => first 8192 of
    # 16384 iterations of nest 0, none of nest 1.
    u = dap.utilization(0)
    assert 0 < u < 1
    assert dap.utilization(3) == 0.0


def test_disk_timeline_concatenates(tiny_program, tiny_layout):
    dap = build_dap(tiny_program, tiny_layout)
    tl = dap.disk_timeline(0)
    assert tl.shape == (16384 + 8192,)
    with pytest.raises(AnalysisError):
        dap.disk_timeline(9)


def test_active_intervals_timed(tiny_program, tiny_layout):
    dap = build_dap(tiny_program, tiny_layout)
    timing = compute_timing(tiny_program)
    per_disk = dap.active_intervals(timing)
    iv0 = per_disk[0]
    assert len(iv0) == 1
    assert iv0[0].start_s == pytest.approx(0.0)
    # Disk 0 is active for the first 8192 iterations of nest 0.
    assert iv0[0].end_s == pytest.approx(timing.nest(0).iteration_start_s(8192))
    assert per_disk[3] == []


def test_active_intervals_merge_gap(tiny_program, tiny_layout):
    dap = build_dap(tiny_program, tiny_layout)
    timing = compute_timing(tiny_program)
    merged = dap.active_intervals(timing, merge_gap_s=1e9)
    # With an enormous merge threshold every disk has at most one interval.
    assert all(len(ivs) <= 1 for ivs in merged)


def test_active_fractions_split_iterations(tiny_program, tiny_layout):
    dap = build_dap(tiny_program, tiny_layout)
    timing = compute_timing(tiny_program)
    full = dap.active_intervals(timing)
    frac = dap.active_intervals(timing, active_fractions=[0.25, 0.25])
    # With fraction 0.25 and zero merge threshold, each active iteration
    # becomes its own quarter-length interval.
    total_full = sum(iv.duration_s for iv in full[0])
    total_frac = sum(iv.duration_s for iv in frac[0])
    assert total_frac == pytest.approx(0.25 * total_full, rel=1e-6)
    with pytest.raises(AnalysisError):
        dap.active_intervals(timing, active_fractions=[0.5])


def test_bad_shapes_rejected():
    with pytest.raises(AnalysisError):
        DiskAccessPattern(
            num_disks=2,
            activity=(np.zeros((4, 3), dtype=bool),),
            outer_values=(np.arange(4),),
        )


def test_timing_nest_count_checked(tiny_program, tiny_layout, phase_program):
    dap = build_dap(tiny_program, tiny_layout)
    wrong = compute_timing(phase_program)
    with pytest.raises(AnalysisError):
        dap.active_intervals(wrong)
