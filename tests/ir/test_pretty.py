"""Pretty printer output."""

from repro.ir.builder import ProgramBuilder
from repro.ir.nodes import PowerAction, PowerCall
from repro.ir.pretty import format_loop, format_program


def _program():
    b = ProgramBuilder("demo")
    A = b.array("A", (4, 4))
    with b.nest("i", 0, 4) as i:
        with b.loop("j", 0, 4, step=2) as j:
            b.stmt(reads=[A[i, j]], cycles=7, label="load")
        b.power_call(PowerCall(PowerAction.SPIN_UP, 3))
    return b.build()


def test_program_rendering_contains_structure():
    text = format_program(_program())
    assert "program demo:" in text
    assert "declare A[4][4]:C" in text
    assert "for i in [0, 4):" in text
    assert "for j in [0, 4) step 2:" in text
    assert "A[i, j]:R" in text
    assert "# load" in text
    assert "spin_up(disk3)" in text


def test_rendering_is_deterministic():
    assert format_program(_program()) == format_program(_program())


def test_empty_loop_renders_pass():
    from repro.ir.nodes import Loop

    assert format_loop(Loop("i", 0, 3, ())).splitlines()[1].strip() == "pass"


def test_indentation_tracks_depth():
    text = format_program(_program())
    lines = [l for l in text.splitlines() if "compute[" in l]
    assert lines[0].startswith(" " * 16)  # nest(2) + loop + loop => depth 4
