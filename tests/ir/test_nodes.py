"""IR node invariants: refs, statements, power calls, loops."""

import pytest

from repro.ir.arrays import Array
from repro.ir.expr import var
from repro.ir.nodes import (
    AccessMode,
    ArrayRef,
    Loop,
    PowerAction,
    PowerCall,
    Statement,
)
from repro.util.errors import IRError

A = Array("A", (16, 16))
B = Array("B", (256,))


def _ref(mode=AccessMode.READ):
    return ArrayRef(A, (var("i"), var("j")), mode)


def test_ref_rank_checked():
    with pytest.raises(IRError):
        ArrayRef(A, (var("i"),))


def test_ref_lifts_int_subscripts():
    r = ArrayRef(A, (var("i"), 3))
    assert r.subscripts[1].is_constant


def test_ref_variables_and_rename():
    r = _ref()
    assert r.variables == {"i", "j"}
    rr = r.rename({"i": "i2"})
    assert rr.variables == {"i2", "j"}


def test_ref_substitute_and_transpose():
    r = _ref()
    s = r.substitute("i", 2 * var("t"))
    assert s.subscripts[0] == 2 * var("t")
    t = r.transposed()
    assert t.subscripts == tuple(reversed(r.subscripts))


def test_statement_reads_writes_split():
    s = Statement(
        refs=(_ref(AccessMode.READ), _ref(AccessMode.WRITE)), cost_cycles=10
    )
    assert len(s.reads) == 1
    assert len(s.writes) == 1
    assert s.arrays == {"A"}
    assert s.variables == {"i", "j"}


def test_statement_negative_cost_rejected():
    with pytest.raises(IRError):
        Statement(refs=(_ref(),), cost_cycles=-1)


def test_power_call_validation():
    PowerCall(PowerAction.SPIN_DOWN, 0)
    PowerCall(PowerAction.SET_RPM, 1, rpm=3000)
    with pytest.raises(IRError):
        PowerCall(PowerAction.SET_RPM, 0)  # missing level
    with pytest.raises(IRError):
        PowerCall(PowerAction.SPIN_UP, 0, rpm=3000)  # spurious level
    with pytest.raises(IRError):
        PowerCall(PowerAction.SPIN_DOWN, -1)


def test_power_call_str_matches_paper_syntax():
    assert str(PowerCall(PowerAction.SPIN_DOWN, 2)) == "spin_down(disk2)"
    assert str(PowerCall(PowerAction.SPIN_UP, 0)) == "spin_up(disk0)"
    assert str(PowerCall(PowerAction.SET_RPM, 1, rpm=4200)) == "set_RPM(4200, disk1)"


def test_loop_trip_count_and_values():
    l = Loop("i", 0, 10, (), step=3)
    assert l.trip_count == 4
    assert list(l.iter_values()) == [0, 3, 6, 9]
    assert l.bounds_inclusive == (0, 9)


def test_loop_zero_trip_bounds_raise():
    l = Loop("i", 5, 5, ())
    assert l.trip_count == 0
    with pytest.raises(IRError):
        l.bounds_inclusive


def test_loop_validation():
    with pytest.raises(IRError):
        Loop("i", 0, 10, (), step=0)
    with pytest.raises(IRError):
        Loop("i", 10, 0, ())
    with pytest.raises(IRError):
        Loop("", 0, 1, ())


def test_loop_statement_iteration_and_arrays():
    inner = Loop("j", 0, 4, (Statement((_ref(),), 5),))
    outer = Loop("i", 0, 8, (inner, Statement((ArrayRef(B, (var("i"),)),), 2)))
    stmts = list(outer.statements())
    assert len(stmts) == 2
    assert outer.arrays == {"A", "B"}
    assert [l.var for l in outer.inner_loops()] == ["j"]
    assert outer.loop_variables() == ["i", "j"]


def test_total_statement_executions():
    inner = Loop("j", 0, 4, (Statement((_ref(),), 5),))
    outer = Loop("i", 0, 8, (inner, Statement((ArrayRef(B, (var("i"),)),), 2)))
    # inner statement runs 8*4 = 32 times; outer-level statement 8 times.
    assert outer.total_statement_executions() == 40
