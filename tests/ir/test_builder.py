"""Program builder DSL."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.nodes import AccessMode, Loop, PowerAction, PowerCall
from repro.util.errors import IRError


def test_builds_nested_structure():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 8))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], cycles=3)
    prog = b.build()
    assert prog.num_nests == 1
    nest = prog.nest(0)
    assert nest.var == "i"
    inner = nest.body[0]
    assert isinstance(inner, Loop) and inner.var == "j"
    stmt = inner.body[0]
    assert stmt.refs[0].mode is AccessMode.READ
    assert stmt.cost_cycles == 3


def test_reads_and_writes():
    b = ProgramBuilder("p")
    A = b.array("A", (8,))
    B = b.array("B", (8,))
    with b.nest("i", 0, 8) as i:
        s = b.stmt(reads=[A[i]], writes=[B[i]], cycles=1)
    assert {r.array.name for r in s.reads} == {"A"}
    assert {w.array.name for w in s.writes} == {"B"}


def test_duplicate_array_rejected():
    b = ProgramBuilder("p")
    b.array("A", (4,))
    with pytest.raises(IRError):
        b.array("A", (8,))


def test_loop_requires_nest():
    b = ProgramBuilder("p")
    b.array("A", (4,))
    with pytest.raises(IRError):
        with b.loop("i", 0, 4):
            pass


def test_nest_rejects_nesting():
    b = ProgramBuilder("p")
    A = b.array("A", (4,))
    with pytest.raises(IRError):
        with b.nest("i", 0, 4) as i:
            with b.nest("j", 0, 4):
                pass


def test_variable_shadowing_rejected():
    b = ProgramBuilder("p")
    A = b.array("A", (4, 4))
    with pytest.raises(IRError):
        with b.nest("i", 0, 4) as i:
            with b.loop("i", 0, 4):
                pass


def test_stmt_outside_loop_rejected():
    b = ProgramBuilder("p")
    A = b.array("A", (4,))
    with pytest.raises(IRError):
        b.stmt(reads=[A[0]])


def test_empty_statement_rejected():
    b = ProgramBuilder("p")
    b.array("A", (4,))
    with pytest.raises(IRError):
        with b.nest("i", 0, 4):
            b.stmt()


def test_power_call_insertion():
    b = ProgramBuilder("p")
    A = b.array("A", (4,))
    with b.nest("i", 0, 4) as i:
        b.stmt(reads=[A[i]])
        b.power_call(PowerCall(PowerAction.SPIN_DOWN, 0))
    nest = b.build().nest(0)
    assert isinstance(nest.body[1], PowerCall)


def test_build_requires_a_nest():
    b = ProgramBuilder("p")
    b.array("A", (4,))
    with pytest.raises(IRError):
        b.build()


def test_array_handle_exposes_metadata():
    b = ProgramBuilder("p")
    A = b.array("A", (4, 8))
    assert A.name == "A"
    assert A.shape == (4, 8)
