"""Static program validation."""

import pytest

from repro.ir.arrays import Array
from repro.ir.builder import ProgramBuilder
from repro.ir.expr import var
from repro.ir.nodes import ArrayRef, Loop, Statement
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.util.errors import IRError


def test_valid_program_stats(tiny_program):
    stats = validate_program(tiny_program)
    assert stats.num_nests == 2
    assert stats.num_loops == 2
    assert stats.num_statements == 2
    assert stats.num_power_calls == 0
    assert stats.max_depth == 1
    assert stats.total_statement_executions == 3 * 8192


def test_out_of_bounds_subscript_detected():
    b = ProgramBuilder("p")
    A = b.array("A", (8,))
    with b.nest("i", 0, 8) as i:
        b.stmt(reads=[A[i + 1]])  # i=7 -> A[8] out of bounds
    with pytest.raises(IRError, match="ranges over"):
        validate_program(b.build())


def test_negative_subscript_detected():
    b = ProgramBuilder("p")
    A = b.array("A", (8,))
    with b.nest("i", 0, 8) as i:
        b.stmt(reads=[A[i - 1]])
    with pytest.raises(IRError, match="ranges over"):
        validate_program(b.build())


def test_undeclared_array_detected():
    ghost = Array("GHOST", (8,))
    stmt = Statement((ArrayRef(ghost, (var("i"),)),))
    nest = Loop("i", 0, 8, (stmt,))
    prog = Program("p", arrays=(), nests=(nest,))
    with pytest.raises(IRError, match="undeclared"):
        validate_program(prog)


def test_stale_declaration_detected():
    """A ref pointing at a different declaration object of the same name
    (shape mismatch) is caught — guards the with_arrays rewrite path."""
    b = ProgramBuilder("p")
    A = b.array("A", (8,))
    with b.nest("i", 0, 8) as i:
        b.stmt(reads=[A[i]])
    prog = b.build()
    bigger = Array("A", (16,))
    broken = Program("p", arrays=(bigger,), nests=prog.nests)
    with pytest.raises(IRError, match="stale"):
        validate_program(broken)


def test_unbound_variable_detected():
    ghost = Statement((ArrayRef(Array("A", (8,)), (var("z"),)),))
    nest = Loop("i", 0, 8, (ghost,))
    prog = Program("p", arrays=(Array("A", (8,)),), nests=(nest,))
    with pytest.raises(IRError, match="unbound"):
        validate_program(prog)


def test_shadowing_detected():
    inner = Loop("i", 0, 4, ())
    outer = Loop("i", 0, 4, (inner,))
    prog = Program("p", arrays=(), nests=(outer,))
    with pytest.raises(IRError, match="shadows"):
        validate_program(prog)


def test_zero_trip_loop_is_tolerated():
    nest = Loop("i", 0, 0, ())
    prog = Program("p", arrays=(), nests=(nest,))
    stats = validate_program(prog)
    assert stats.num_loops == 1
    assert stats.total_statement_executions == 0


def test_workload_models_validate():
    """Every Table 2 benchmark model passes static validation."""
    from repro.workloads import all_workloads

    for wl in all_workloads():
        stats = validate_program(wl.program)
        assert stats.num_statements > 0
