"""Affine expression algebra, evaluation, and range analysis."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.expr import Affine, const, var
from repro.util.errors import IRError


def test_construction_normalizes_zero_coeffs():
    assert Affine((("i", 0),), 3) == const(3)
    assert var("i").coeff_map == {"i": 1}


def test_equality_is_structural():
    assert var("i") * 2 + 1 == Affine((("i", 2),), 1)
    assert var("i") + var("j") == var("j") + var("i")
    assert hash(var("i") + 1) == hash(1 + var("i"))


def test_arithmetic():
    e = 2 * var("i") - var("j") + 5
    assert e.coefficient("i") == 2
    assert e.coefficient("j") == -1
    assert e.constant == 5
    assert (e - e).is_constant
    assert (e * 3).constant == 15
    assert (-e).coefficient("i") == -2


def test_mul_requires_int():
    with pytest.raises(IRError):
        var("i") * 1.5  # type: ignore[operator]
    with pytest.raises(IRError):
        var("i") * var("j")


def test_mul_by_constant_affine_allowed():
    assert var("i") * const(3) == var("i") * 3


def test_evaluate_scalar_and_vector():
    e = 2 * var("i") + var("j") - 1
    assert e.evaluate({"i": 3, "j": 4}) == 9
    out = e.evaluate({"i": np.arange(4), "j": np.zeros(4, dtype=int)})
    assert np.array_equal(out, np.array([-1, 1, 3, 5]))


def test_evaluate_unbound_raises():
    with pytest.raises(IRError, match="unbound"):
        var("i").evaluate({})


def test_value_range_signs():
    e = 2 * var("i") - 3 * var("j") + 1
    lo, hi = e.value_range({"i": (0, 10), "j": (0, 4)})
    assert lo == 2 * 0 - 3 * 4 + 1 == -11
    assert hi == 2 * 10 - 3 * 0 + 1 == 21


def test_value_range_empty_bound_raises():
    with pytest.raises(IRError):
        var("i").value_range({"i": (5, 4)})


def test_substitute():
    e = 2 * var("i") + var("j")
    s = e.substitute("i", 4 * var("t") + var("e"))
    assert s == 8 * var("t") + 2 * var("e") + var("j")
    assert e.substitute("missing", 5) == e


def test_rename():
    e = var("i") + 2 * var("j")
    assert e.rename({"i": "i_g0"}) == var("i_g0") + 2 * var("j")


def test_str_rendering():
    assert str(2 * var("i") - var("j") + 1) == "2*i - j + 1"
    assert str(const(0)) == "0"
    assert str(-var("k")) == "-k"


@given(
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(-50, 50),
    st.tuples(st.integers(-10, 10), st.integers(-10, 10)).map(
        lambda p: (min(p), max(p))
    ),
    st.tuples(st.integers(-10, 10), st.integers(-10, 10)).map(
        lambda p: (min(p), max(p))
    ),
)
def test_value_range_is_tight_bound(ci, cj, c0, bi, bj):
    """Property: range analysis returns exactly min/max over the domain."""
    e = ci * var("i") + cj * var("j") + c0
    lo, hi = e.value_range({"i": bi, "j": bj})
    ii, jj = np.meshgrid(
        np.arange(bi[0], bi[1] + 1), np.arange(bj[0], bj[1] + 1)
    )
    vals = e.evaluate({"i": ii, "j": jj})
    vals = np.asarray(vals) if not np.isscalar(vals) else np.array([vals])
    assert lo == vals.min()
    assert hi == vals.max()


@given(
    st.integers(-20, 20), st.integers(-20, 20), st.integers(-5, 5),
    st.integers(-100, 100), st.integers(-100, 100),
)
def test_arithmetic_matches_pointwise_semantics(a, b, k, vi, vj):
    """Property: algebra on Affine == algebra on evaluated values."""
    e1 = a * var("i") + 3
    e2 = b * var("j") - 7
    env = {"i": vi, "j": vj}
    assert (e1 + e2).evaluate(env) == e1.evaluate(env) + e2.evaluate(env)
    assert (e1 - e2).evaluate(env) == e1.evaluate(env) - e2.evaluate(env)
    assert (e1 * k).evaluate(env) == e1.evaluate(env) * k
