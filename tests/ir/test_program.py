"""Program container semantics."""

import pytest

from repro.ir.arrays import StorageOrder
from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program
from repro.util.errors import IRError


def _two_nest_program():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 8))
    B = b.array("B", (8, 8))
    b.array("UNUSED", (4,))
    with b.nest("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], cycles=1)
    with b.nest("k", 0, 8) as k:
        with b.loop("l", 0, 8) as l:
            b.stmt(reads=[B[k, l]], cycles=1)
    return b.build()


def test_lookup_and_errors():
    p = _two_nest_program()
    assert p.array("A").shape == (8, 8)
    with pytest.raises(IRError):
        p.array("missing")
    assert p.nest(1).var == "k"
    with pytest.raises(IRError):
        p.nest(2)


def test_referenced_arrays_excludes_unused():
    p = _two_nest_program()
    assert p.referenced_arrays == {"A", "B"}
    # 2 arrays of 8*8*8 bytes each; UNUSED not counted.
    assert p.total_data_bytes == 2 * 8 * 8 * 8


def test_duplicate_arrays_rejected():
    p = _two_nest_program()
    with pytest.raises(IRError):
        Program("bad", arrays=(p.arrays[0], p.arrays[0]), nests=p.nests)


def test_with_nest_replaces_one():
    p = _two_nest_program()
    p2 = p.with_nest(0, p.nest(1))
    assert p2.nest(0).var == "k"
    assert p2.nest(1).var == "k"
    assert p.nest(0).var == "i"  # original untouched
    with pytest.raises(IRError):
        p.with_nest(5, p.nest(0))


def test_with_arrays_rewrites_declarations_and_refs():
    p = _two_nest_program()
    newA = p.array("A").with_order(StorageOrder.COLUMN_MAJOR)
    p2 = p.with_arrays({"A": newA})
    assert p2.array("A").order is StorageOrder.COLUMN_MAJOR
    # Every reference to A now points at the transformed declaration.
    for stmt in p2.statements():
        for ref in stmt.refs:
            if ref.array.name == "A":
                assert ref.array.order is StorageOrder.COLUMN_MAJOR
    # B untouched.
    assert p2.array("B").order is StorageOrder.ROW_MAJOR


def test_statements_in_program_order():
    p = _two_nest_program()
    arrays = [next(iter(s.arrays)) for s in p.statements()]
    assert arrays == ["A", "B"]


def test_clock_must_be_positive():
    p = _two_nest_program()
    with pytest.raises(IRError):
        Program("bad", p.arrays, p.nests, clock_hz=0)
