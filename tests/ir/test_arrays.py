"""Array declarations: shapes, strides, linearization, layout transform."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.arrays import Array, StorageOrder
from repro.util.errors import IRError


def test_basic_properties():
    a = Array("A", (4, 8), element_size=8)
    assert a.rank == 2
    assert a.num_elements == 32
    assert a.size_bytes == 256


def test_invalid_declarations():
    with pytest.raises(IRError):
        Array("", (4,))
    with pytest.raises(IRError):
        Array("A", ())
    with pytest.raises(IRError):
        Array("A", (0, 4))
    with pytest.raises(IRError):
        Array("A", (4,), element_size=0)


def test_strides_row_major():
    a = Array("A", (3, 4, 5))
    assert a.strides_elements() == (20, 5, 1)


def test_strides_column_major():
    a = Array("A", (3, 4, 5), order=StorageOrder.COLUMN_MAJOR)
    assert a.strides_elements() == (1, 3, 12)


def test_linearize_matches_numpy():
    a = Array("A", (3, 4))
    np_idx = np.arange(12).reshape(3, 4)
    for i in range(3):
        for j in range(4):
            assert a.linearize((i, j)) == np_idx[i, j]


def test_linearize_column_major_matches_fortran():
    a = Array("A", (3, 4), order=StorageOrder.COLUMN_MAJOR)
    np_idx = np.arange(12).reshape(3, 4, order="F")
    for i in range(3):
        for j in range(4):
            assert a.linearize((i, j)) == np_idx[i, j]


def test_linearize_vectorized():
    a = Array("A", (8, 8))
    i = np.arange(8)
    flat = a.linearize((i, np.zeros(8, dtype=int)))
    assert np.array_equal(flat, i * 8)


def test_linearize_rank_mismatch():
    with pytest.raises(IRError):
        Array("A", (3, 4)).linearize((1,))


def test_contains():
    a = Array("A", (3, 4))
    assert a.contains((2, 3))
    assert not a.contains((3, 0))
    assert not a.contains((0, -1))
    assert not a.contains((0,))


def test_with_order_transposes_storage_only():
    a = Array("A", (3, 4))
    t = a.with_order(a.order.transposed())
    assert t.order is StorageOrder.COLUMN_MAJOR
    assert t.shape == a.shape
    assert t.name == a.name
    assert StorageOrder.COLUMN_MAJOR.transposed() is StorageOrder.ROW_MAJOR


def test_byte_extent():
    a = Array("A", (10,), element_size=8)
    assert a.byte_extent(2, 5) == (16, 40)
    with pytest.raises(IRError):
        a.byte_extent(5, 11)
    with pytest.raises(IRError):
        a.byte_extent(-1, 2)


@given(
    st.lists(st.integers(1, 6), min_size=1, max_size=3),
    st.sampled_from([StorageOrder.ROW_MAJOR, StorageOrder.COLUMN_MAJOR]),
)
def test_linearize_is_bijective_over_domain(shape, order):
    """Property: linearization is a bijection [0, N) over the index lattice."""
    a = Array("A", tuple(shape), order=order)
    grids = np.meshgrid(*[np.arange(s) for s in shape], indexing="ij")
    flats = a.linearize(tuple(g for g in grids))
    flat_set = set(np.asarray(flats).ravel().tolist())
    assert flat_set == set(range(a.num_elements))
