"""Result containers and normalization."""

import pytest

from repro.disksim.disk import DiskStats
from repro.disksim.stats import ResponseSummary, SimulationResult
from repro.util.errors import SimulationError


def _result(energy_per_disk=(10.0, 20.0), time=2.0, scheme="X"):
    stats = []
    for e in energy_per_disk:
        ds = DiskStats()
        ds.add("idle", time, e / time)
        stats.append(ds)
    return SimulationResult(
        scheme=scheme,
        program_name="p",
        execution_time_s=time,
        disk_stats=tuple(stats),
        responses=ResponseSummary.from_samples([0.01, 0.02, 0.03]),
        num_requests=3,
        num_directives=0,
    )


def test_totals_and_breakdown():
    r = _result()
    assert r.num_disks == 2
    assert r.total_energy_j == pytest.approx(30.0)
    assert r.energy_breakdown_j()["idle"] == pytest.approx(30.0)
    assert r.time_breakdown_s()["idle"] == pytest.approx(4.0)


def test_normalization():
    base = _result((10.0, 20.0), time=2.0, scheme="Base")
    half = _result((5.0, 10.0), time=1.0)
    assert half.normalized_energy(base) == pytest.approx(0.5)
    assert half.normalized_time(base) == pytest.approx(0.5)


def test_normalization_requires_positive_base():
    base = _result((0.0, 0.0))
    with pytest.raises(SimulationError):
        _result().normalized_energy(base)


def test_response_summary_stats():
    s = ResponseSummary.from_samples([0.01, 0.02, 0.03, 0.04])
    assert s.count == 4
    assert s.mean_s == pytest.approx(0.025)
    assert s.max_s == pytest.approx(0.04)
    assert s.total_s == pytest.approx(0.10)
    assert 0.03 <= s.p95_s <= 0.04


def test_response_summary_empty():
    s = ResponseSummary.from_samples([])
    assert s.count == 0
    assert s.mean_s == 0.0


def test_negative_execution_time_rejected():
    with pytest.raises(SimulationError):
        SimulationResult(
            scheme="X",
            program_name="p",
            execution_time_s=-1.0,
            disk_stats=(),
            responses=ResponseSummary.from_samples([]),
            num_requests=0,
            num_directives=0,
        )
