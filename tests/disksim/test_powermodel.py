"""Per-RPM power/latency/transition models."""

import numpy as np
import pytest

from repro.disksim.params import DiskParams, DRPMParams
from repro.disksim.powermodel import PowerModel
from repro.util.errors import ConfigError


@pytest.fixture()
def pm() -> PowerModel:
    return PowerModel(DiskParams(), DRPMParams())


def test_anchored_at_table1(pm):
    assert pm.idle_power_w(15000) == pytest.approx(10.2)
    assert pm.active_power_w(15000) == pytest.approx(13.5)
    assert pm.standby_power_w == pytest.approx(2.5)


def test_power_monotone_in_rpm(pm):
    arr = np.asarray(pm.idle_power_w(np.array(pm.levels, dtype=float)))
    assert (np.diff(arr) > 0).all()
    assert arr[0] > pm.drpm.power_floor_w  # floor never reached at min level
    act = np.asarray(pm.active_power_w(np.array(pm.levels, dtype=float)))
    assert (act > arr).all()


def test_min_level_power_near_floor(pm):
    """At 3000 RPM the spindle term is tiny: idle power ~ the floor, which
    is what makes deep RPM descents worth almost as much as a spin-down."""
    assert pm.idle_power_w(3000) < 2.7


def test_rotational_latency_scales_inverse(pm):
    assert pm.rotational_latency_s(15000) == pytest.approx(2.0e-3)
    assert pm.rotational_latency_s(7500) == pytest.approx(4.0e-3)
    with pytest.raises(ConfigError):
        pm.rotational_latency_s(0)


def test_transfer_rate_scales_linear(pm):
    assert pm.transfer_rate_bps(15000) == pytest.approx(pm.disk.transfer_rate_bps)
    assert pm.transfer_rate_bps(3000) == pytest.approx(pm.disk.transfer_rate_bps / 5)


def test_service_time_components(pm):
    full = pm.service_time_s(0, 15000, "full")
    assert full == pytest.approx(3.4e-3 + 2.0e-3)
    stream = pm.service_time_s(0, 15000, "stream")
    assert stream == pytest.approx(pm.disk.short_seek_s + 2.0e-3)
    seq = pm.service_time_s(0, 15000, "seq")
    assert seq == pytest.approx(2.0e-3)
    with pytest.raises(ConfigError):
        pm.service_time_s(64, 15000, "warp")
    with pytest.raises(ConfigError):
        pm.service_time_s(-1, 15000)


def test_service_slower_at_lower_rpm(pm):
    fast = pm.service_time_s(65536, 15000)
    slow = pm.service_time_s(65536, 3000)
    assert slow > 2 * fast


def test_service_energy(pm):
    t = pm.service_time_s(4096, 15000)
    assert pm.service_energy_j(4096, 15000) == pytest.approx(t * 13.5)


def test_transition_time_and_energy(pm):
    per = pm.drpm.transition_time_per_step_s
    assert pm.transition_time_s(15000, 15000) == 0.0
    assert pm.transition_time_s(15000, 13800) == pytest.approx(per)
    assert pm.transition_time_s(15000, 3000) == pytest.approx(10 * per)
    assert pm.transition_time_s(3000, 15000) == pytest.approx(10 * per)
    # Energy billed at the faster level's idle power (paper §4.1).
    e = pm.transition_energy_j(15000, 3000)
    assert e == pytest.approx(10 * per * 10.2)
    assert pm.transition_energy_j(3000, 15000) == pytest.approx(e)
    assert pm.transition_power_w(4200, 3000) == pytest.approx(pm.idle_power_w(4200))


def test_vectorized_planner_helpers(pm):
    assert pm.idle_power_per_level.shape == (11,)
    assert pm.idle_power_per_level[-1] == pytest.approx(10.2)
    assert pm.steps_from_max.tolist() == list(range(10, -1, -1))


def test_mismatched_params_rejected():
    with pytest.raises(ConfigError):
        PowerModel(DiskParams(rpm=10_000), DRPMParams())
    with pytest.raises(ConfigError):
        PowerModel(DiskParams(), DRPMParams(power_floor_w=11.0))
