"""ReplayPlan: the precomputed striping fast path must reproduce the old
per-replay computation exactly, on a mixed read/write trace."""

import pytest

from repro.analysis.cycles import EstimationModel
from repro.controllers.drpm import ReactiveDRPM
from repro.disksim.params import SubsystemParams
from repro.disksim.replay import ReplayPlan
from repro.disksim.simulator import simulate
from repro.trace.generator import generate_trace
from repro.util.errors import SimulationError


@pytest.fixture()
def mixed_trace(tiny_program, tiny_layout, small_trace_options):
    """tiny_program's first nest writes B while reading A — a genuinely
    mixed read/write stream."""
    trace = generate_trace(tiny_program, tiny_layout, small_trace_options)
    kinds = {r.kind for r in trace.requests}
    assert len(kinds) > 1, "fixture must exercise reads and writes"
    return trace


def test_plan_matches_per_replay_computation(mixed_trace):
    """Regression: every precomputed entry equals what the old hot loop
    recomputed per replay — the striping fan-out via
    layout.striping(...).per_disk_bytes(...) and the seek class via the
    per-disk stream-tracking state machine."""
    plan = ReplayPlan.for_trace(mixed_trace)
    layout = mixed_trace.layout
    assert plan.columns is mixed_trace.columns
    assert len(plan.entries) == len(mixed_trace.requests)
    num_disks = layout.num_disks
    last_array = [None] * num_disks
    last_offset = [-1] * num_disks
    stream_ends = [dict() for _ in range(num_disks)]
    seen_seeks = set()
    for req, entry in zip(mixed_trace.requests, plan.entries):
        old = layout.striping(req.array).per_disk_bytes(req.offset, req.nbytes)
        assert [(d, n) for d, n, _ in entry] == sorted(old.items())
        assert sum(n for _, n, _ in entry) == req.nbytes
        end = req.offset + req.nbytes
        for disk_id, _, seek in entry:
            if (
                last_offset[disk_id] == req.offset
                and last_array[disk_id] == req.array
            ):
                expect = "seq"
            elif stream_ends[disk_id].get(req.array) == req.offset:
                expect = "stream"
            else:
                expect = "full"
            assert seek == expect
            seen_seeks.add(seek)
            last_array[disk_id] = req.array
            last_offset[disk_id] = end
            stream_ends[disk_id][req.array] = end
    assert "full" in seen_seeks  # the trace must exercise real seeks


def test_simulate_with_and_without_plan_identical(
    mixed_trace, assert_results_identical
):
    params = SubsystemParams(num_disks=mixed_trace.layout.num_disks)
    plan = ReplayPlan.for_trace(mixed_trace)
    for make_ctrl in (lambda: None, lambda: ReactiveDRPM(params.drpm)):
        implicit = simulate(
            mixed_trace, params, make_ctrl(), collect_busy_intervals=True
        )
        explicit = simulate(
            mixed_trace,
            params,
            make_ctrl(),
            collect_busy_intervals=True,
            plan=plan,
        )
        assert_results_identical(implicit, explicit)


def test_plan_shared_across_directive_bearing_traces(mixed_trace):
    """with_directives() shares the request columns, so one plan serves
    every scheme replay of a suite."""
    plan = ReplayPlan.for_trace(mixed_trace)
    derived = mixed_trace.with_directives(())
    assert plan.matches(derived)


def test_mismatched_plan_rejected(mixed_trace, phase_program, phase_layout,
                                  small_trace_options):
    other = generate_trace(phase_program, phase_layout, small_trace_options)
    plan = ReplayPlan.for_trace(other)
    params = SubsystemParams(num_disks=mixed_trace.layout.num_disks)
    with pytest.raises(SimulationError):
        simulate(mixed_trace, params, plan=plan)
