"""Open-loop replay equivalence: stepwise ⇔ segmented ⇔ auto.

Open-loop mode (``simulate(..., open_loop=True)``) issues requests at
their trace arrival times instead of compounding the closed-loop delay
feedback.  Everything the closed-loop differential suites guarantee must
hold here too: both engines (and auto's routing), whole and streamed and
pipelined replays, ingested and synthetic and generated traces, clean and
under seeded fault regimes, all produce bit-identical results — mirroring
``test_stream_equivalence.py``.

Also here: the acceptance-scale run — a 10⁶-request bursty synthetic
stream replayed through every engine with identical ``DiskStats``.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import _assert_results_identical  # noqa: E402
from strategies import fault_configs, programs, synth_configs  # noqa: E402

from repro.controllers.drpm import ReactiveDRPM
from repro.controllers.tpm import ReactiveTPM
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.ir.nodes import PowerAction, PowerCall
from repro.layout.files import default_layout
from repro.trace.generator import generate_trace, stream_trace
from repro.trace.ingest import ingest_trace, stream_ingest
from repro.trace.request import DirectiveRecord
from repro.trace.synth import SynthConfig, synth_stream, synth_trace

ENGINES = ("stepwise", "segmented", "auto")

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "fixtures" / "traces" / "small.trace"
)

_SLOW_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _controller(name, params):
    if name == "tpm":
        return ReactiveTPM(params.effective_tpm_threshold_s)
    if name == "drpm":
        return ReactiveDRPM(params.drpm)
    return None


def _replay(trace, params, scheme, engine, **kw):
    ctrl = _controller(scheme, params)
    if ctrl is None:
        return simulate(trace, params, engine=engine, open_loop=True, **kw)
    return simulate(trace, params, ctrl, engine=engine, open_loop=True, **kw)


# --------------------------------------------------------------------- #
# Ingested fixture: every engine, every scheme, whole and streamed.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("scheme", ["base", "tpm", "drpm"])
def test_ingested_fixture_engines_identical(scheme, assert_results_identical):
    trace = ingest_trace(FIXTURE, num_disks=4)
    params = SubsystemParams(num_disks=4)
    results = [_replay(trace, params, scheme, eng) for eng in ENGINES]
    for other in results[1:]:
        assert_results_identical(results[0], other)


@pytest.mark.parametrize("chunk", [7, 64])
def test_ingested_fixture_streamed_matches_whole(chunk):
    params = SubsystemParams(num_disks=4)
    whole = ingest_trace(FIXTURE, num_disks=4)
    res_w = {eng: _replay(whole, params, "base", eng) for eng in ENGINES}
    for eng in ENGINES:
        stream = stream_ingest(FIXTURE, num_disks=4, chunk_requests=chunk)
        res_s = _replay(stream, params, "base", eng)
        assert res_s.execution_time_s == res_w[eng].execution_time_s
        assert res_s.disk_stats == res_w[eng].disk_stats
        assert res_s.num_requests == res_w[eng].num_requests
    assert res_w["stepwise"] == res_w["segmented"] == res_w["auto"]


# --------------------------------------------------------------------- #
# Property: random synthetic workloads × engines × schemes.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(config=synth_configs(), data=st.data())
def test_synth_engines_identical(config, data):
    assert_results_identical = _assert_results_identical
    params = SubsystemParams(num_disks=config.num_disks)
    scheme = data.draw(st.sampled_from(["base", "tpm", "drpm"]))
    trace = synth_trace(config)
    results = [_replay(trace, params, scheme, eng) for eng in ENGINES]
    for other in results[1:]:
        assert_results_identical(results[0], other)
    # Streamed (re-iterable) replay of the same config is bit-identical
    # on stats and timing for every engine.
    for eng in ENGINES:
        res_s = _replay(synth_stream(config), params, scheme, eng)
        assert res_s.execution_time_s == results[0].execution_time_s
        assert res_s.disk_stats == results[0].disk_stats


@_SLOW_SETTINGS
@given(config=synth_configs(max_requests=1500))
def test_synth_pipelined_matches_unpipelined(config):
    params = SubsystemParams(num_disks=config.num_disks)
    plain = simulate(
        synth_stream(config), params, engine="segmented", open_loop=True
    )
    piped = simulate(
        synth_stream(config), params, engine="segmented", open_loop=True,
        pipeline=True,
    )
    assert plain == piped


# --------------------------------------------------------------------- #
# Property: generated program traces, open loop, clean and faulted.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_generated_trace_open_loop_engines_identical(data):
    assert_results_identical = _assert_results_identical
    program = data.draw(programs())
    num_disks = data.draw(st.sampled_from([1, 4]))
    layout = default_layout(program.arrays, num_disks=num_disks)
    params = SubsystemParams(num_disks=num_disks)
    trace = generate_trace(program, layout)
    results = [
        simulate(trace, params, engine=eng, open_loop=True)
        for eng in ENGINES
    ]
    for other in results[1:]:
        assert_results_identical(results[0], other)
    # And streamed: any chunking reproduces the whole-trace stats.
    chunk = data.draw(st.sampled_from([1, 13, 256]))
    res_s = simulate(
        stream_trace(program, layout, chunk_requests=chunk),
        params,
        engine="segmented",
        open_loop=True,
    )
    assert res_s.execution_time_s == results[0].execution_time_s
    assert res_s.disk_stats == results[0].disk_stats


@_SLOW_SETTINGS
@given(data=st.data())
def test_open_loop_under_faults_engines_identical(data):
    """Seeded fault regimes replay bit-identically across engines in open
    loop, exactly as they do closed-loop (whole-trace only: streamed
    replays reject fault plans by contract)."""
    assert_results_identical = _assert_results_identical
    program = data.draw(programs())
    layout = default_layout(program.arrays, num_disks=4)
    params = SubsystemParams(num_disks=4)
    faults = data.draw(fault_configs(allow_null=False))
    trace = generate_trace(program, layout)
    results = [
        simulate(trace, params, engine=eng, open_loop=True, faults=faults)
        for eng in ENGINES
    ]
    for other in results[1:]:
        assert_results_identical(results[0], other)


# --------------------------------------------------------------------- #
# Trace directives under open loop: cursor clamping is engine-invariant.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ENGINES)
def test_directives_clamp_to_cursor_open_loop(engine, assert_results_identical):
    """Open loop freezes the delay feedback, so a directive's nominal
    time can precede a backlogged disk's cursor; both engines must clamp
    it to the cursor instead of raising, identically."""
    config = SynthConfig(
        num_requests=400, num_disks=2, model="onoff", rate_hz=20000.0,
        seed=3,
    )
    trace = synth_trace(config)
    params = SubsystemParams(num_disks=2)
    tmid = float(trace.columns.nominal_time_s[200])
    levels = params.drpm.levels
    directives = [
        DirectiveRecord(tmid, PowerCall(PowerAction.SET_RPM, 0, rpm=levels[0])),
        DirectiveRecord(
            tmid + 0.5, PowerCall(PowerAction.SET_RPM, 0, rpm=levels[-1])
        ),
        DirectiveRecord(tmid, PowerCall(PowerAction.SPIN_DOWN, 1)),
        DirectiveRecord(tmid + 1.0, PowerCall(PowerAction.SPIN_UP, 1)),
    ]
    with_d = trace.with_directives(directives)
    res = simulate(with_d, params, engine=engine, open_loop=True)
    assert res.num_directives == len(directives)
    ref = simulate(with_d, params, engine="stepwise", open_loop=True)
    assert_results_identical(res, ref)


# --------------------------------------------------------------------- #
# Open vs closed loop: the modes genuinely differ.
# --------------------------------------------------------------------- #
def test_open_loop_differs_from_closed_loop():
    """On a backlogged trace the closed-loop delay feedback stretches
    execution; open loop issues at trace arrivals and finishes sooner."""
    config = SynthConfig(
        num_requests=2000, num_disks=2, model="poisson", rate_hz=50000.0,
        seed=1,
    )
    trace = synth_trace(config)
    params = SubsystemParams(num_disks=2)
    open_res = simulate(trace, params, open_loop=True)
    closed_res = simulate(trace, params)
    assert open_res.execution_time_s < closed_res.execution_time_s


# --------------------------------------------------------------------- #
# Acceptance scale: 10⁶-request bursty synthetic, every engine.
# --------------------------------------------------------------------- #
def test_million_request_bursty_stream_engines_identical():
    config = SynthConfig(
        num_requests=1_000_000, num_disks=8, model="onoff", lba_skew=0.5,
        seed=7,
    )
    params = SubsystemParams(num_disks=8)
    results = {
        eng: simulate(
            synth_stream(config), params, engine=eng, open_loop=True
        )
        for eng in ENGINES
    }
    piped = simulate(
        synth_stream(config), params, engine="auto", open_loop=True,
        pipeline=True,
    )
    ref = results["stepwise"]
    assert ref.num_requests == 1_000_000
    for other in (results["segmented"], results["auto"], piped):
        assert other.disk_stats == ref.disk_stats
        assert other.execution_time_s == ref.execution_time_s
        assert other.responses.count == ref.responses.count
        assert other.responses.max_s == ref.responses.max_s
