"""Directives on boundary instants ⇔ engine equivalence.

The segmented engine applies power directives as segment-boundary state
edits on a per-disk mirror.  The placements most likely to expose a
mirror/state-machine divergence are the boundary instants themselves:
directives tied to a request's issue edge, landing exactly on a service
completion, or chained onto a transition's end edge (entangled with the
in-flight transition).  :func:`strategies.boundary_adjacent_traces`
generates exactly those placements; every engine must stay bit-identical,
with and without fault injection.

Also here: targeted streams for the two size-gated vector paths — the
reactive-DRPM windowed kernel (engaged only when
``window_size * num_disks >= DRPM_VECTOR_MIN_WINDOW``) and the
auto-spin-down vector kernel (engaged only for streams of at least
``AUTO_VECTOR_MIN_REQUESTS`` requests) — so both run under their real
gates, not just in synthetic unit settings.
"""

import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import _assert_results_identical  # noqa: E402
from strategies import boundary_adjacent_traces, fault_configs  # noqa: E402

from repro.controllers.drpm import ReactiveDRPM
from repro.controllers.tpm import ReactiveTPM
from repro.disksim.params import DRPMParams, SubsystemParams
from repro.disksim.replay import ReplayPlan
from repro.disksim.simulator import (
    AUTO_VECTOR_MIN_REQUESTS,
    DRPM_VECTOR_MIN_WINDOW,
    replay_coverage,
    reset_replay_coverage,
    simulate,
)
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import IORequest, Trace
from repro.util.units import KB

ENGINES = ("stepwise", "segmented", "auto")

_SLOW_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- #
# Property: boundary-adjacent directives, optionally under faults.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_boundary_adjacent_directives_bit_identical(data):
    trace, params = data.draw(boundary_adjacent_traces())
    faults = data.draw(st.none() | fault_configs())
    plan = ReplayPlan.for_trace(trace)
    results = {
        eng: simulate(
            trace, params, collect_busy_intervals=True, plan=plan,
            engine=eng, faults=faults,
        )
        for eng in ENGINES
    }
    _assert_results_identical(results["segmented"], results["stepwise"])
    _assert_results_identical(results["auto"], results["stepwise"])


# --------------------------------------------------------------------- #
# Targeted streams for the size-gated vector paths.
# --------------------------------------------------------------------- #
def _uniform_trace(num_disks, num_requests, gap_s, burst_every=0, burst_gap_s=0.0):
    layout = SubsystemLayout(
        num_disks=num_disks,
        entries=(
            FileEntry("A", 4096 * KB, Striping(0, num_disks, 64 * KB), 0),
        ),
    )
    reqs = []
    t = 0.0
    for i in range(num_requests):
        reqs.append(IORequest(t, "A", (i % 16) * 64 * KB, 8 * KB, False))
        t += burst_gap_s if burst_every and (i + 1) % burst_every == 0 else gap_s
    return Trace("gated", layout, tuple(reqs), (), t + 3.0)


def test_drpm_vector_window_path_bit_identical():
    """A window-size/disk-count product over ``DRPM_VECTOR_MIN_WINDOW``
    engages the windowed vector kernel (count-bounded windows plus the
    response-sum fold); it must reproduce the stepwise replay exactly."""
    drpm = DRPMParams(window_size=256)
    params = SubsystemParams(num_disks=4, drpm=drpm)
    assert drpm.window_size * params.num_disks >= DRPM_VECTOR_MIN_WINDOW
    trace = _uniform_trace(4, 2048, gap_s=0.004)
    plan = ReplayPlan.for_trace(trace)
    results = {}
    for eng in ENGINES:
        reset_replay_coverage()
        results[eng] = simulate(
            trace, params, ReactiveDRPM(drpm), collect_busy_intervals=True,
            plan=plan, engine=eng,
        )
        cov = replay_coverage()
        if eng == "segmented":
            # The gate is open: the vector kernel must actually engage.
            assert cov["segments_vector"] >= 1
            assert cov["subrequests_vector"] > 0
    _assert_results_identical(results["segmented"], results["stepwise"])
    _assert_results_identical(results["auto"], results["stepwise"])


def test_auto_spindown_vector_path_bit_identical():
    """A stream past ``AUTO_VECTOR_MIN_REQUESTS`` with mid-replay
    autonomous spin-downs engages the fire-bounded vector windows; spin
    counts, timing and stats must match the stepwise replay exactly."""
    n = AUTO_VECTOR_MIN_REQUESTS + 1024
    trace = _uniform_trace(4, n, gap_s=0.002, burst_every=512, burst_gap_s=1.0)
    params = SubsystemParams(num_disks=4)
    plan = ReplayPlan.for_trace(trace)
    results = {}
    for eng in ENGINES:
        reset_replay_coverage()
        results[eng] = simulate(
            trace, params, ReactiveTPM(0.4), plan=plan, engine=eng
        )
        cov = replay_coverage()
        if eng == "segmented":
            assert cov["segments_vector"] >= 1
            assert cov["subrequests_vector"] > 0
    # The 1 s bursts exceed the 0.4 s threshold: fires must happen.
    assert results["stepwise"].total_spin_downs > 0
    _assert_results_identical(results["segmented"], results["stepwise"])
    _assert_results_identical(results["auto"], results["stepwise"])
