"""Parameter objects (paper Table 1 values and derived quantities)."""

import pytest

from repro.disksim.params import DiskParams, DRPMParams, SubsystemParams
from repro.util.errors import ConfigError
from repro.util.units import MB


def test_table1_defaults():
    d = DiskParams()
    assert d.model == "IBM Ultrastar 36Z15"
    assert d.rpm == 15_000
    assert d.avg_seek_s == pytest.approx(3.4e-3)
    assert d.avg_rotation_s == pytest.approx(2.0e-3)
    assert d.transfer_rate_bps == pytest.approx(55 * MB)
    assert (d.power_active_w, d.power_idle_w, d.power_standby_w) == (13.5, 10.2, 2.5)
    assert (d.spin_down_energy_j, d.spin_down_time_s) == (13.0, 1.5)
    assert (d.spin_up_energy_j, d.spin_up_time_s) == (135.0, 10.9)


def test_tpm_breakeven_matches_formula():
    d = DiskParams()
    # (13 + 135 - 2.5*12.4) / (10.2 - 2.5) = 15.19...
    expected = (148.0 - 2.5 * 12.4) / 7.7
    assert d.tpm_breakeven_s == pytest.approx(expected)
    assert d.tpm_breakeven_s > d.spin_down_time_s + d.spin_up_time_s


def test_breakeven_floors_at_transition_time():
    d = DiskParams(spin_down_energy_j=0.0, spin_up_energy_j=0.0)
    assert d.tpm_breakeven_s == pytest.approx(12.4)


def test_power_ordering_enforced():
    with pytest.raises(ConfigError):
        DiskParams(power_idle_w=14.0)  # idle above active
    with pytest.raises(ConfigError):
        DiskParams(power_standby_w=11.0)  # standby above idle


def test_drpm_levels():
    r = DRPMParams()
    levels = r.levels
    assert levels[0] == 3000 and levels[-1] == 15000
    assert len(levels) == 11
    assert all(b - a == 1200 for a, b in zip(levels, levels[1:]))
    assert r.level_index(3000) == 0
    assert r.level_index(15000) == 10
    assert r.steps_between(15000, 3000) == 10
    with pytest.raises(ValueError):
        r.level_index(3100)
    with pytest.raises(ValueError):
        r.level_index(16200)


def test_drpm_validation():
    with pytest.raises(ConfigError):
        DRPMParams(min_rpm=4000, max_rpm=15000, step_rpm=1200)  # not divisible
    with pytest.raises(ConfigError):
        DRPMParams(lower_tolerance=0.2, upper_tolerance=0.1)


def test_subsystem_threshold_defaults_to_breakeven():
    p = SubsystemParams()
    assert p.effective_tpm_threshold_s == pytest.approx(p.disk.tpm_breakeven_s)
    p2 = SubsystemParams(tpm_idleness_threshold_s=5.0)
    assert p2.effective_tpm_threshold_s == 5.0


def test_subsystem_requires_matching_max_rpm():
    with pytest.raises(ConfigError):
        SubsystemParams(disk=DiskParams(rpm=10_000))
