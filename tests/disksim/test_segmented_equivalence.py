"""Segmented batch engine ⇔ stepwise reference equivalence.

The segmented replay engine (`simulate(..., engine="segmented")`) must be
*bit-identical* to the per-sub-request reference state machine — same
execution time, energy accounting, per-disk stats, response stream, and
busy intervals — for random programs and for every bundled Table 2
workload under all seven schemes.  The `auto` engine must agree with both
(it only chooses between them).
"""

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import _assert_results_identical  # noqa: E402
from strategies import programs  # noqa: E402

from repro.analysis.cycles import EstimationModel
from repro.controllers.tpm import ReactiveTPM
from repro.disksim.params import SubsystemParams
from repro.disksim.replay import ReplayPlan
from repro.disksim.simulator import (
    replay_coverage,
    reset_replay_coverage,
    simulate,
)
from repro.experiments.schemes import SCHEME_NAMES, run_schemes, run_workload
from repro.layout.files import default_layout
from repro.trace.generator import TraceOptions, generate_trace
from repro.util.errors import SimulationError
from repro.workloads import all_workloads

ENGINES = ("stepwise", "segmented", "auto")

_SLOW_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_suites_identical(ref_suite, other_suite, check):
    assert set(ref_suite.results) == set(other_suite.results)
    for scheme, ref_result in ref_suite.results.items():
        check(other_suite.results[scheme], ref_result)


# --------------------------------------------------------------------- #
# API surface
# --------------------------------------------------------------------- #
def test_unknown_engine_rejected(tiny_program, tiny_layout, small_trace_options):
    trace = generate_trace(tiny_program, tiny_layout, small_trace_options)
    with pytest.raises(SimulationError, match="unknown replay engine"):
        simulate(trace, SubsystemParams(num_disks=4), engine="warp")


# --------------------------------------------------------------------- #
# Property: random programs, all schemes, every engine.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_random_programs_bit_identical(data):
    program = data.draw(programs())
    num_disks = data.draw(st.sampled_from([1, 4]))
    max_req = data.draw(st.sampled_from([128, 4096]))
    layout = default_layout(program.arrays, num_disks=num_disks)
    params = SubsystemParams(num_disks=num_disks)
    options = TraceOptions(max_request_bytes=max_req)
    estimation = EstimationModel(relative_error=0.10)
    suites = {
        eng: run_schemes(
            program, layout, params, options, estimation, engine=eng
        )
        for eng in ENGINES
    }
    _assert_suites_identical(
        suites["stepwise"], suites["segmented"], _assert_results_identical
    )
    _assert_suites_identical(
        suites["stepwise"], suites["auto"], _assert_results_identical
    )


# --------------------------------------------------------------------- #
# Bundled Table 2 workloads: all seven schemes, every engine.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_bundled_workload_schemes_bit_identical(
    workload, assert_results_identical
):
    suites = {eng: run_workload(workload, engine=eng) for eng in ENGINES}
    assert set(suites["stepwise"].results) == set(SCHEME_NAMES)
    _assert_suites_identical(
        suites["stepwise"], suites["segmented"], assert_results_identical
    )
    _assert_suites_identical(
        suites["stepwise"], suites["auto"], assert_results_identical
    )


# --------------------------------------------------------------------- #
# Engine selection and coverage accounting.
# --------------------------------------------------------------------- #
def test_segmented_engine_engages_batch_kernels(phase_program, phase_layout):
    """A directive-free replay of a non-trivial stream must actually run
    on the segmented path with the vector kernel, not fall back."""
    trace = generate_trace(phase_program, phase_layout, TraceOptions())
    reset_replay_coverage()
    simulate(trace, SubsystemParams(num_disks=4), engine="segmented")
    cov = replay_coverage()
    assert cov["replays_segmented"] == 1
    assert cov["replays_stepwise"] == 0
    assert cov["segments_vector"] >= 1
    assert cov["subrequests_vector"] > 0


def test_reactive_tpm_runs_segmented_with_spindowns(
    phase_program, phase_layout
):
    """Reactive TPM's autonomous spin-down is handled in-kernel: the
    segmented engine must take it (not fall back) and reproduce the
    stepwise spin-down count exactly."""
    trace = generate_trace(phase_program, phase_layout, TraceOptions())
    params = SubsystemParams(num_disks=4)
    results = {}
    for eng in ENGINES:
        reset_replay_coverage()
        # A threshold well under the phase program's ~3 s compute gap so
        # the autonomous spin-down actually fires mid-replay.
        ctrl = ReactiveTPM(0.5)
        results[eng] = simulate(trace, params, ctrl, engine=eng)
        cov = replay_coverage()
        if eng == "stepwise":
            assert cov["replays_stepwise"] == 1
        else:
            assert cov["replays_segmented"] == 1
    # The phase program's compute gap exceeds the threshold, so the
    # autonomous path must actually fire.
    assert results["stepwise"].total_spin_downs > 0
    for eng in ("segmented", "auto"):
        assert results[eng].total_spin_downs == results["stepwise"].total_spin_downs
        assert results[eng].execution_time_s == results["stepwise"].execution_time_s
        assert results[eng].disk_stats == results["stepwise"].disk_stats


def test_auto_keeps_directive_dense_replays_segmented():
    """Under ``auto``, directive-dense replays (IDRPM: two level shifts
    around every exploited gap) and reactive DRPM both stay on the
    segmented engine — directives are mirror boundary edits and the window
    heuristic runs in-kernel, so neither routes to the reference loop."""
    workload = all_workloads()[0]
    reset_replay_coverage()
    run_workload(workload, schemes=("Base", "IDRPM", "DRPM"), engine="auto")
    cov = replay_coverage()
    assert cov["replays_stepwise"] == 0
    assert cov["replays_segmented"] >= 3
    assert cov["directive_edits"] > 0  # IDRPM shifts applied as edits


def test_shared_plan_consistent_across_engines(
    tiny_program, tiny_layout, small_trace_options
):
    """One ReplayPlan shared across engines (the suite-engine pattern)
    yields identical results from each."""
    trace = generate_trace(tiny_program, tiny_layout, small_trace_options)
    params = SubsystemParams(num_disks=4)
    plan = ReplayPlan.for_trace(trace)
    ref = simulate(
        trace, params, collect_busy_intervals=True, plan=plan, engine="stepwise"
    )
    for eng in ("segmented", "auto"):
        out = simulate(
            trace, params, collect_busy_intervals=True, plan=plan, engine=eng
        )
        assert out.execution_time_s == ref.execution_time_s
        assert out.request_responses == ref.request_responses
        assert out.busy_intervals == ref.busy_intervals
        assert out.disk_stats == ref.disk_stats
