"""Timelines are an engine-independent artifact.

The tentpole invariant: a :class:`TimelineRecorder` attached to any engine
(``stepwise`` / ``segmented`` / ``auto``) produces **bit-identical**
``Segment`` streams — states, boundaries, powers, RPMs, *and decision
causes* — because every emission sits at a stats-accrual site and the
accruals themselves are engine-identical.  On top of the timeline, the
:class:`AttributionLedger` must conserve energy: its per-cause buckets
partition the replay's reported :class:`DiskStats` joules exactly.

Three layers of evidence:

* a hypothesis property over :func:`strategies.boundary_adjacent_traces`
  (directives hugging issue/completion/transition edges) with and without
  fault injection;
* the full Table 2 sweep — every workload x every scheme, clean and under
  a seeded fault regime — comparing segment streams across all three
  engines and checking ledger conservation on each;
* the disabled path: without a recorder the segmented engine must keep
  using its fused vector kernel (coverage counters prove the hot path is
  untouched), which is what the bench's <2 % obs-disabled gate measures.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from strategies import boundary_adjacent_traces, fault_configs  # noqa: E402

from repro.controllers.base import Controller
from repro.controllers.compiler_directed import CompilerDirected
from repro.controllers.drpm import ReactiveDRPM
from repro.controllers.oracle import OracleDRPM, OracleTPM
from repro.controllers.tpm import ReactiveTPM
from repro.disksim.params import SubsystemParams
from repro.disksim.replay import ReplayPlan
from repro.disksim.simulator import (
    REPLAY_COVERAGE,
    reset_replay_coverage,
    simulate,
)
from repro.disksim.timeline import AttributionLedger, TimelineRecorder
from repro.experiments.schemes import SCHEME_NAMES, run_workload
from repro.faults import FaultConfig, FaultRates
from repro.workloads import WORKLOAD_NAMES, build_workload

ENGINES = ("stepwise", "segmented", "auto")

_SLOW_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _segments(rec: TimelineRecorder) -> dict:
    return {d: rec.segments(d) for d in rec.disks}


def _check_ledger(rec: TimelineRecorder, result, params) -> None:
    rec.verify()
    ledger = AttributionLedger.from_recorder(rec, params.disk.power_idle_w)
    ledger.verify_against(rec, result)


# --------------------------------------------------------------------- #
# Property: boundary-adjacent directives, optionally under faults.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_boundary_adjacent_segments_bit_identical(data):
    trace, params = data.draw(boundary_adjacent_traces())
    faults = data.draw(st.none() | fault_configs())
    plan = ReplayPlan.for_trace(trace)
    streams = {}
    for eng in ENGINES:
        rec = TimelineRecorder()
        result = simulate(
            trace, params, plan=plan, engine=eng, faults=faults, recorder=rec
        )
        _check_ledger(rec, result, params)
        streams[eng] = _segments(rec)
    assert streams["segmented"] == streams["stepwise"]
    assert streams["auto"] == streams["stepwise"]


# --------------------------------------------------------------------- #
# The full Table 2 sweep: 6 workloads x 7 schemes x {clean, faulted}.
# --------------------------------------------------------------------- #
_FAULT_REGIME = FaultConfig(
    seed=7,
    rates=FaultRates(
        spinup_jitter_p=0.3,
        spinup_jitter_max_s=0.4,
        spinup_fail_p=0.2,
        deadline_miss_p=0.2,
        deadline_miss_max_s=0.5,
    ),
)


def _scheme_replay_specs(wl, suite, params, faults):
    """(scheme, trace, controller-factory) for every Table 2 scheme.

    Mirrors :func:`repro.experiments.schemes.run_schemes`' dispatch; the
    oracle controllers read the *regime's own* base replay so their timed
    directives are identical inputs to every engine.
    """
    from repro.analysis.cycles import compute_timing
    from repro.trace.generator import directives_at_positions

    trace = suite.base_trace
    base = simulate(
        trace, params, engine="stepwise", faults=faults,
        collect_busy_intervals=True,
    )
    timing = compute_timing(wl.program)

    def cm_trace(scheme):
        return trace.with_directives(
            directives_at_positions(suite.plans[scheme].placements, timing)
        )

    return [
        ("Base", trace, lambda: Controller()),
        ("TPM", trace, lambda: ReactiveTPM(params.effective_tpm_threshold_s)),
        ("ITPM", trace, lambda: OracleTPM(base, params)),
        ("DRPM", trace, lambda: ReactiveDRPM(params.drpm)),
        ("IDRPM", trace, lambda: OracleDRPM(base, params)),
        ("CMTPM", cm_trace("CMTPM"), lambda: CompilerDirected("tpm")),
        ("CMDRPM", cm_trace("CMDRPM"), lambda: CompilerDirected("drpm")),
    ]


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize(
    "faults", [None, _FAULT_REGIME], ids=["clean", "faulted"]
)
def test_table2_sweep_segments_bit_identical(workload, faults):
    wl = build_workload(workload)
    params = SubsystemParams()
    suite = run_workload(wl, params=params)  # plans + base trace (clean)
    assert tuple(suite.results) == SCHEME_NAMES
    for scheme, trace, make_ctrl in _scheme_replay_specs(
        wl, suite, params, faults
    ):
        plan = ReplayPlan.for_trace(trace)
        streams = {}
        for eng in ENGINES:
            rec = TimelineRecorder()
            result = simulate(
                trace,
                params,
                make_ctrl(),
                plan=plan,
                engine=eng,
                faults=faults,
                recorder=rec,
            )
            _check_ledger(rec, result, params)
            streams[eng] = _segments(rec)
        assert streams["segmented"] == streams["stepwise"], (
            workload,
            scheme,
        )
        assert streams["auto"] == streams["stepwise"], (workload, scheme)


# --------------------------------------------------------------------- #
# Causes actually appear (the attribution is not vacuously equal).
# --------------------------------------------------------------------- #
def test_sweep_surfaces_directive_and_fault_causes():
    wl = build_workload("galgel")
    params = SubsystemParams()
    suite = run_workload(wl, params=params)
    from repro.analysis.cycles import compute_timing
    from repro.trace.generator import directives_at_positions

    trace = suite.base_trace.with_directives(
        directives_at_positions(
            suite.plans["CMDRPM"].placements, compute_timing(wl.program)
        )
    )
    rec = TimelineRecorder()
    result = simulate(
        trace,
        params,
        CompilerDirected("drpm"),
        faults=_FAULT_REGIME,
        recorder=rec,
    )
    causes = {
        s.cause for d in rec.disks for s in rec.segments(d) if s.cause
    }
    families = {c.split(":", 1)[0] for c in causes}
    assert "directive" in families
    ledger = AttributionLedger.from_recorder(rec, params.disk.power_idle_w)
    ledger.verify_against(rec, result)
    rolled = ledger.to_dict(rollup_families=True)
    names = [c["cause"] for c in rolled["causes"]]
    assert "directive:*" in names
    assert sum(c["transitions"] for c in rolled["causes"]) > 0


# --------------------------------------------------------------------- #
# Disabled path: no recorder => the fused vector kernel stays in play.
# --------------------------------------------------------------------- #
def _big_uniform_trace(num_requests=600, num_disks=4):
    from repro.layout.files import FileEntry, SubsystemLayout
    from repro.layout.striping import Striping
    from repro.trace.request import IORequest, Trace
    from repro.util.units import KB

    layout = SubsystemLayout(
        num_disks=num_disks,
        entries=(
            FileEntry("A", 4096 * KB, Striping(0, num_disks, 64 * KB), 0),
        ),
    )
    reqs = tuple(
        IORequest(0.01 * i, "A", (i % 16) * 64 * KB, 8 * KB, False)
        for i in range(num_requests)
    )
    return Trace("big", layout, reqs, (), 0.01 * num_requests + 1.0)


def test_recorder_disabled_keeps_fused_vector_path():
    trace = _big_uniform_trace()
    params = SubsystemParams(num_disks=4)
    reset_replay_coverage()
    simulate(trace, params, engine="segmented")
    assert REPLAY_COVERAGE["segments_fused"] > 0
    fused_without = REPLAY_COVERAGE["segments_fused"]

    # With a recorder the engine trades the fused kernel for the exact
    # per-disk emission loop — same arithmetic, segment-level bookkeeping.
    reset_replay_coverage()
    rec = TimelineRecorder()
    simulate(trace, params, engine="segmented", recorder=rec)
    assert REPLAY_COVERAGE["segments_fused"] == 0
    assert rec.disks

    # And detaching the recorder restores the fused path (no sticky state).
    reset_replay_coverage()
    simulate(trace, params, engine="segmented")
    assert REPLAY_COVERAGE["segments_fused"] == fused_without
