"""Disk-level fault mechanics: spin-up chains, retry/timeout service,
pending directives across faulty transitions, and the silent-stall audit.

These tests drive :class:`repro.disksim.disk.Disk` directly with a stub
fault plan, so every injected event is exact (no RNG) and each state
machine property is checked in isolation from the replay engines.
"""

import pytest

from repro.disksim.disk import Disk
from repro.faults import FaultConfig, FaultRates, SpinUpFault
from repro.util.errors import SimulationError


class _StubPlan:
    """Minimal stand-in for FaultPlan: fixed spin-up outcome, real rates."""

    def __init__(self, fault=None, rates=None):
        self.config = FaultConfig(rates=rates or FaultRates())
        self._fault = fault
        self.calls = []

    def spinup_fault(self, disk_id, ordinal):
        self.calls.append((disk_id, ordinal))
        return self._fault


def _standby_disk(power_model, plan):
    """A disk that has completed a spin-down (next wake is a fault target)."""
    disk = Disk(0, power_model, faults=plan)
    disk.spin_down(0.0)
    disk.advance(power_model.spin_down_time_s + 1.0)
    assert disk.standby and not disk.in_transition
    return disk


# --------------------------------------------------------------------- #
# Spin-up failure chains
# --------------------------------------------------------------------- #
def test_spinup_failure_chain_bounded_and_accounted(power_model):
    fault = SpinUpFault(failures=2, jitter_s=(0.3, 0.0, 0.7))
    plan = _StubPlan(fault=fault)
    disk = _standby_disk(power_model, plan)
    t0 = disk.cursor_s
    disk.spin_up(t0)
    disk.advance(t0 + 1000.0)

    assert disk.stats.num_spinup_failures == 2
    # Each attempt counts as a spin-up (three transitions ran).
    assert disk.stats.num_spin_ups == 3
    assert not disk.standby and not disk.in_transition
    expected_ready = t0 + 3 * power_model.spin_up_time_s + 0.3 + 0.7
    assert disk.ready_s == pytest.approx(expected_ready)
    # One event, one draw — the chain is not re-drawn per attempt.
    assert plan.calls == [(0, 0)]


def test_spinup_jitter_only_stretches_single_attempt(power_model):
    fault = SpinUpFault(failures=0, jitter_s=(1.25,))
    disk = _standby_disk(power_model, _StubPlan(fault=fault))
    t0 = disk.cursor_s
    disk.spin_up(t0)
    assert disk.stats.num_spinup_failures == 0
    assert disk.ready_s == pytest.approx(
        t0 + power_model.spin_up_time_s + 1.25
    )


def test_spinup_ordinals_advance_per_event(power_model):
    """Every spin-up *event* (not attempt) gets the next ordinal, so the
    plan's (disk, ordinal) keying is stable across engines."""
    plan = _StubPlan(fault=None)
    disk = _standby_disk(power_model, plan)
    disk.spin_up(disk.cursor_s)
    disk.advance(disk.cursor_s + 100.0)
    disk.spin_down(disk.cursor_s)
    disk.advance(disk.cursor_s + 100.0)
    # Second wake comes from serve's reactive path — same keying.
    disk.serve(disk.cursor_s + 1.0, 4096)
    assert plan.calls == [(0, 0), (0, 1)]


def test_clean_event_takes_unfaulted_path(power_model):
    """fault=None from the plan must reproduce the no-faults timeline."""
    faulted = _standby_disk(power_model, _StubPlan(fault=None))
    clean = _standby_disk(power_model, None)
    t0 = faulted.cursor_s
    assert clean.cursor_s == t0
    a = faulted.serve(t0 + 0.5, 4096)
    b = clean.serve(t0 + 0.5, 4096)
    assert a == b
    assert faulted.stats == clean.stats


# --------------------------------------------------------------------- #
# Transient request errors: backoff, retry, timeout
# --------------------------------------------------------------------- #
def test_serve_faulty_retries_with_backoff(power_model):
    rates = FaultRates(
        request_error_p=0.01, request_backoff_s=0.01, request_timeout_s=100.0
    )
    plan = _StubPlan(rates=rates)
    disk = Disk(0, power_model, faults=plan)
    ref = Disk(0, power_model)
    clean_done = ref.serve(1.0, 4096)
    done = disk.serve_faulty(1.0, 4096, "full", errors=2)
    svc = clean_done - 1.0
    # attempt0 ends at clean_done; retry 1 at +0.01, retry 2 at +0.02.
    assert done == pytest.approx(clean_done + 0.01 + svc + 0.02 + svc)
    assert disk.stats.num_request_errors == 2
    assert disk.stats.num_request_retries == 2
    assert disk.stats.num_request_timeouts == 0


def test_serve_faulty_times_out(power_model):
    rates = FaultRates(
        request_error_p=0.01, request_backoff_s=0.01, request_timeout_s=0.0
    )
    plan = _StubPlan(rates=rates)
    disk = Disk(0, power_model, faults=plan)
    ref = Disk(0, power_model)
    clean_done = ref.serve(1.0, 4096)
    done = disk.serve_faulty(1.0, 4096, "full", errors=3)
    # The first retry would already start past the (zero) timeout: the
    # chain is abandoned at the first attempt's completion.
    assert done == clean_done
    assert disk.stats.num_request_errors == 1
    assert disk.stats.num_request_timeouts == 1
    assert disk.stats.num_request_retries == 0


# --------------------------------------------------------------------- #
# Directives arriving mid-chain, and the stall audit
# --------------------------------------------------------------------- #
def test_pending_rpm_directive_survives_faulty_chain(power_model):
    """A set_RPM landing mid-spin-up must take effect after the *whole*
    failure chain drains — late, but never lost, never deadlocked."""
    low = power_model.levels[0]
    assert low != power_model.disk.rpm
    fault = SpinUpFault(failures=2, jitter_s=(0.0, 0.0, 0.0))
    disk = _standby_disk(power_model, _StubPlan(fault=fault))
    t0 = disk.cursor_s
    disk.spin_up(t0)
    disk.set_rpm(t0 + 0.1, int(low))  # mid-transition: parks as pending
    disk.advance(t0 + 1000.0)
    assert not disk.standby and not disk.in_transition
    assert disk.rpm == low
    assert disk.stats.num_spin_ups == 3


def test_request_waits_out_faulty_chain(power_model):
    fault = SpinUpFault(failures=3, jitter_s=(0.5, 0.5, 0.5, 0.0))
    disk = _standby_disk(power_model, _StubPlan(fault=fault))
    t0 = disk.cursor_s
    done = disk.serve(t0 + 0.25, 4096)
    chain_end = t0 + 0.25 + 4 * power_model.spin_up_time_s + 1.5
    assert done > chain_end
    assert disk.stats.num_spinup_failures == 3


def test_serve_detects_wedged_transition_queue(power_model, monkeypatch):
    """If a standby disk's wake path stops making progress, serve must
    raise a diagnostic SimulationError instead of spinning silently."""
    disk = Disk(0, power_model)
    disk.spin_down(0.0)
    disk.advance(power_model.spin_down_time_s + 1.0)
    monkeypatch.setattr(
        disk.__class__, "_start_spin_up", lambda self, t, cause="": None
    )
    with pytest.raises(SimulationError, match="stalled"):
        disk.serve(disk.cursor_s + 1.0, 4096)
