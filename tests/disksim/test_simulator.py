"""Replay engine: synchronous app model, striped fan-out, directives."""

import pytest

from repro.controllers.base import Controller, TimedDirective
from repro.disksim.params import SubsystemParams
from repro.disksim.powermodel import PowerModel
from repro.disksim.simulator import apply_call, simulate
from repro.ir.nodes import PowerAction, PowerCall
from repro.layout.files import default_layout
from repro.layout.striping import Striping
from repro.layout.files import FileEntry, SubsystemLayout
from repro.trace.request import DirectiveRecord, IORequest, Trace
from repro.util.errors import SimulationError
from repro.util.units import KB


def _layout(num_disks=4, stripe=64 * KB, size=1024 * KB):
    entry = FileEntry("A", size, Striping(0, num_disks, stripe), 0)
    return SubsystemLayout(num_disks=num_disks, entries=(entry,))


def _trace(requests, layout, compute=10.0):
    return Trace("t", layout, tuple(requests), (), total_compute_s=compute)


def _req(t, offset, nbytes, write=False):
    return IORequest(t, "A", offset, nbytes, write)


def test_empty_trace_idles_all_disks(params):
    lay = _layout()
    res = simulate(_trace([], lay), params)
    assert res.execution_time_s == pytest.approx(10.0)
    assert res.total_energy_j == pytest.approx(4 * 10.0 * 10.2)
    assert res.num_requests == 0


def test_single_disk_request_blocks_app(params):
    lay = _layout()
    pm = PowerModel(params.disk, params.drpm)
    svc = pm.service_time_s(8 * KB, 15000)  # first request: full seek
    res = simulate(_trace([_req(1.0, 0, 8 * KB)], lay), params)
    assert res.execution_time_s == pytest.approx(10.0 + svc)
    assert res.responses.count == 1
    assert res.responses.mean_s == pytest.approx(svc)


def test_striped_request_completes_at_slowest_disk(params):
    lay = _layout()
    pm = PowerModel(params.disk, params.drpm)
    # 256 KB spans all four disks, 64 KB each, served in parallel.
    res = simulate(_trace([_req(0.0, 0, 256 * KB)], lay), params)
    per_disk = pm.service_time_s(64 * KB, 15000)
    assert res.responses.max_s == pytest.approx(per_disk)
    busy = [ds.num_requests for ds in res.disk_stats]
    assert busy == [1, 1, 1, 1]


def test_sequential_stream_skips_seek(params):
    lay = _layout()
    pm = PowerModel(params.disk, params.drpm)
    reqs = [_req(0.0, 0, 8 * KB), _req(1.0, 8 * KB, 8 * KB)]
    res = simulate(_trace(reqs, lay), params)
    assert res.request_responses[0] == pytest.approx(pm.service_time_s(8 * KB, 15000, "full"))
    assert res.request_responses[1] == pytest.approx(pm.service_time_s(8 * KB, 15000, "seq"))


def test_stream_resume_pays_short_seek(params):
    lay = _layout()
    pm = PowerModel(params.disk, params.drpm)
    # Disk 0 serves A[0:8K]; then disk 1 (different stripe) interrupts
    # nothing on disk 0 — but a *second file region* on disk 0 would.
    reqs = [
        _req(0.0, 0, 8 * KB),           # disk 0
        _req(1.0, 256 * KB, 8 * KB),    # stripe 4 -> disk 0 again, non-adjacent
    ]
    res = simulate(_trace(reqs, lay), params)
    assert res.request_responses[1] == pytest.approx(
        pm.service_time_s(8 * KB, 15000, "full")
    )


def test_delays_propagate_to_execution_time(params):
    lay = _layout()
    reqs = [_req(0.0, 0, 8 * KB), _req(5.0, 8 * KB, 8 * KB)]
    res = simulate(_trace(reqs, lay), params)
    assert res.execution_time_s == pytest.approx(
        10.0 + sum(res.request_responses)
    )


def test_trace_directives_execute_at_program_position(params):
    lay = _layout()
    pm = PowerModel(params.disk, params.drpm)
    down = DirectiveRecord(2.0, PowerCall(PowerAction.SET_RPM, 0, rpm=3000))
    up = DirectiveRecord(8.0, PowerCall(PowerAction.SET_RPM, 0, rpm=15000))
    trace = Trace("t", lay, (_req(0.0, 0, 8 * KB),), (down, up), total_compute_s=10.0)
    res = simulate(trace, params)
    assert res.num_directives == 2
    assert res.disk_stats[0].num_rpm_shifts == 2
    # Energy strictly below an always-idle-at-full baseline for disk 0.
    base = simulate(_trace([_req(0.0, 0, 8 * KB)], lay), params)
    assert res.disk_stats[0].total_energy_j < base.disk_stats[0].total_energy_j


def test_directive_overhead_charged(params):
    lay = _layout()
    call = PowerCall(PowerAction.SPIN_DOWN, 0, overhead_cycles=750e6)  # 1 s at 750 MHz
    trace = Trace("t", lay, (), (DirectiveRecord(1.0, call),), total_compute_s=10.0)
    res = simulate(trace, params)
    assert res.execution_time_s == pytest.approx(11.0)


def test_directive_unknown_disk_rejected(params):
    lay = _layout()
    bad = DirectiveRecord(1.0, PowerCall(PowerAction.SPIN_DOWN, 9))
    with pytest.raises(SimulationError):
        simulate(Trace("t", lay, (), (bad,), total_compute_s=5.0), params)


def test_oracle_timed_directives(params):
    lay = _layout()

    class Oracle(Controller):
        name = "oracle"

        def timed_directives(self):
            return [
                TimedDirective(1.0, PowerCall(PowerAction.SET_RPM, 1, rpm=3000)),
                TimedDirective(6.0, PowerCall(PowerAction.SET_RPM, 1, rpm=15000)),
            ]

    res = simulate(_trace([_req(0.5, 0, 8 * KB), _req(8.0, 0, 8 * KB)], lay), params, Oracle())
    assert res.scheme == "oracle"
    assert res.disk_stats[1].num_rpm_shifts == 2


def test_layout_mismatch_rejected(params):
    lay = _layout(num_disks=2)
    with pytest.raises(SimulationError):
        simulate(_trace([], lay), params)  # params has 4 disks


def test_busy_interval_collection(params):
    lay = _layout()
    res = simulate(
        _trace([_req(0.0, 0, 8 * KB)], lay), params, collect_busy_intervals=True
    )
    assert len(res.busy_intervals[0]) == 1
    iv = res.busy_intervals[0][0]
    assert iv.duration_s > 0


def test_apply_call_dispatch(params, power_model):
    from repro.disksim.disk import Disk

    d = Disk(0, power_model)
    apply_call(d, 0.0, PowerCall(PowerAction.SPIN_DOWN, 0))
    d.advance(5.0)
    assert d.standby
    apply_call(d, 5.0, PowerCall(PowerAction.SPIN_UP, 0))
    d.advance(20.0)
    assert not d.standby
    apply_call(d, 20.0, PowerCall(PowerAction.SET_RPM, 0, rpm=3000))
    d.advance(25.0)
    assert d.rpm == 3000


def test_determinism(params):
    lay = _layout()
    reqs = [_req(float(i) * 0.2, (i * 8 * KB) % (512 * KB), 8 * KB) for i in range(40)]
    r1 = simulate(_trace(reqs, lay), params)
    r2 = simulate(_trace(reqs, lay), params)
    assert r1.total_energy_j == r2.total_energy_j
    assert r1.execution_time_s == r2.execution_time_s
    assert r1.request_responses == r2.request_responses
