"""Streamed (chunked) replay ⇔ whole-trace replay equivalence.

A `TraceStream` replay must reproduce the whole-`Trace` replay of the
same request sequence exactly — same execution time, per-disk stats, and
directive accounting — for any chunk size, both engines, and directive
streams attached mid-trace; the only documented difference is the
response summary's 95th percentile, which the bounded-memory fold reports
as the ``0.0`` sentinel.  The streamed path's structure-of-arrays batch
kernels (fused accounting) must engage at scale (256 disks) and still be
bit-identical to the per-object stepwise engine.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from strategies import programs  # noqa: E402

from repro.controllers.tpm import ReactiveTPM
from repro.disksim.params import SubsystemParams
from repro.disksim.replay import ReplayPlan
from repro.disksim.simulator import (
    replay_coverage,
    reset_replay_coverage,
    simulate,
)
from repro.disksim.stats import ResponseSummary
from repro.ir.nodes import PowerAction, PowerCall
from repro.layout.files import default_layout
from repro.trace.generator import TraceOptions, generate_trace, stream_trace
from repro.trace.request import DirectiveRecord
from repro.trace.stream import TraceStream
from repro.util.errors import SimulationError, TraceError

ENGINES = ("stepwise", "segmented")

_SLOW_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_stream_matches_whole(streamed, whole) -> None:
    """Streamed result == whole-trace result, modulo the p95 sentinel."""
    assert streamed.scheme == whole.scheme
    assert streamed.program_name == whole.program_name
    assert streamed.execution_time_s == whole.execution_time_s
    assert streamed.num_requests == whole.num_requests
    assert streamed.num_directives == whole.num_directives
    assert streamed.disk_stats == whole.disk_stats
    # Count and max fold exactly; the whole-trace total uses pairwise
    # summation while the stream folds sequentially, so the mean/total
    # agree only to rounding; p95 is the documented streamed sentinel.
    assert streamed.responses.count == whole.responses.count
    assert streamed.responses.max_s == whole.responses.max_s
    assert streamed.responses.p95_s == 0.0
    assert streamed.responses.total_s == pytest.approx(
        whole.responses.total_s, rel=1e-12, abs=1e-15
    )
    # Streamed replays never retain per-request columns.
    assert streamed.request_responses == ()
    assert streamed.busy_intervals == ()


# --------------------------------------------------------------------- #
# Property: random programs × chunk sizes × engines, Base controller.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_streamed_replay_matches_whole(data):
    program = data.draw(programs())
    num_disks = data.draw(st.sampled_from([1, 4]))
    layout = default_layout(program.arrays, num_disks=num_disks)
    params = SubsystemParams(num_disks=num_disks)
    options = TraceOptions(
        max_request_bytes=data.draw(st.sampled_from([128, 4096]))
    )
    chunk_requests = data.draw(st.sampled_from([1, 13, 256, 65536]))

    whole = generate_trace(program, layout, options)
    stream = stream_trace(
        program, layout, options, chunk_requests=chunk_requests
    )
    results = {}
    for eng in ENGINES:
        res_w = simulate(whole, params, engine=eng)
        res_s = simulate(stream, params, engine=eng)
        _assert_stream_matches_whole(res_s, res_w)
        results[eng] = res_s
    # The two engines' streamed results are bit-identical dataclasses.
    assert results["stepwise"] == results["segmented"]


@_SLOW_SETTINGS
@given(data=st.data())
def test_streamed_replay_chunking_invariant(data):
    """Any two chunkings of one request sequence replay bit-identically —
    including the sequentially-folded response totals."""
    program = data.draw(programs())
    layout = default_layout(program.arrays, num_disks=4)
    params = SubsystemParams(num_disks=4)
    sizes = data.draw(
        st.lists(
            st.sampled_from([1, 5, 17, 64, 4096]),
            min_size=2, max_size=2, unique=True,
        )
    )
    results = [
        simulate(
            stream_trace(program, layout, chunk_requests=cr),
            params,
            engine="segmented",
        )
        for cr in sizes
    ]
    assert results[0] == results[1]


# --------------------------------------------------------------------- #
# Directive streams: mid-trace partitioning across chunk boundaries.
# --------------------------------------------------------------------- #
def test_streamed_directives_match_whole(phase_program, phase_layout):
    """Spin and RPM directives landing mid-stream split across chunks by
    the merged-stream tie rule and reproduce the whole-trace replay —
    including the multi-RPM windows that force the fused accounting batch
    off its single-RPM fast path."""
    params = SubsystemParams(num_disks=4)
    whole = generate_trace(phase_program, phase_layout, TraceOptions())
    tmid = float(whole.columns.nominal_time_s[len(whole.columns) // 2])
    tend = float(whole.columns.nominal_time_s[-1])
    levels = params.drpm.levels
    directives = [
        DirectiveRecord(0.0, PowerCall(PowerAction.SET_RPM, 1, rpm=levels[0])),
        DirectiveRecord(
            tmid, PowerCall(PowerAction.SET_RPM, 2, rpm=levels[len(levels) // 2])
        ),
        DirectiveRecord(tmid, PowerCall(PowerAction.SPIN_DOWN, 3)),
        DirectiveRecord(tend, PowerCall(PowerAction.SPIN_UP, 3)),
        DirectiveRecord(
            tend + 1.0, PowerCall(PowerAction.SET_RPM, 1, rpm=levels[-1])
        ),
    ]
    whole_d = whole.with_directives(directives)
    stream_d = stream_trace(
        phase_program, phase_layout, TraceOptions(), chunk_requests=512
    ).with_directives(directives)
    results = {}
    for eng in ENGINES:
        res_w = simulate(whole_d, params, engine=eng)
        assert res_w.num_directives == len(directives)
        res_s = simulate(stream_d, params, engine=eng)
        _assert_stream_matches_whole(res_s, res_w)
        results[eng] = res_s
    assert results["stepwise"] == results["segmented"]


def test_streamed_reactive_controller_matches_whole(
    phase_program, phase_layout
):
    """A reactive controller observes per-completion events; the streamed
    segmented path must route it exactly like the whole-trace replay and
    agree on autonomous spin-down counts."""
    params = SubsystemParams(num_disks=4)
    whole = generate_trace(phase_program, phase_layout, TraceOptions())
    stream = stream_trace(
        phase_program, phase_layout, TraceOptions(), chunk_requests=512
    )
    res_w = simulate(whole, params, ReactiveTPM(0.5), engine="segmented")
    res_s = simulate(stream, params, ReactiveTPM(0.5), engine="segmented")
    assert res_w.total_spin_downs > 0
    _assert_stream_matches_whole(res_s, res_w)


# --------------------------------------------------------------------- #
# 256-disk smoke: the scale grid's batch kernels engage and agree.
# --------------------------------------------------------------------- #
def test_scale_cell_256_disks_engines_identical():
    from repro.experiments.scale import scale_cell

    cell = scale_cell(256, 8192, chunk_requests=1024)
    reset_replay_coverage()
    seg = simulate(cell.stream(), cell.params, engine="segmented")
    cov = replay_coverage()
    step = simulate(cell.stream(), cell.params, engine="stepwise")
    assert seg == step
    assert seg.num_requests == 8192
    assert all(st.num_requests > 0 for st in seg.disk_stats)
    # The columnar replay must actually run the vector kernels at scale.
    assert cov["replays_segmented"] == 1
    assert cov["segments_vector"] >= 1
    assert cov["subrequests_vector"] > 0


# --------------------------------------------------------------------- #
# Plan-level: SeekCarry threads seek continuity across chunk boundaries.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_chunked_plan_seek_classification_matches_whole(data):
    """Concatenated per-chunk plans (seek continuity via SeekCarry) give
    the same per-sub seek classes as the one whole-trace plan — for both
    the single-array merged classifier and the general multi-array path."""
    import numpy as np

    program = data.draw(programs())
    layout = default_layout(program.arrays, num_disks=4)
    chunk_requests = data.draw(st.sampled_from([1, 7, 100]))
    whole = generate_trace(program, layout)
    whole_plan = ReplayPlan.for_trace(whole)

    carry = None
    parts = []
    n = whole.num_requests
    for lo in range(0, n, chunk_requests):
        cols = whole.columns.slice(lo, min(lo + chunk_requests, n))
        plan_c, carry = ReplayPlan.for_columns(cols, layout, carry)
        parts.append(plan_c)
    if not parts:
        assert whole_plan.num_subrequests == 0
        return
    got_seek = np.concatenate([p.sub_seek for p in parts])
    got_disk = np.concatenate([p.sub_disk for p in parts])
    assert np.array_equal(got_seek, whole_plan.sub_seek)
    assert np.array_equal(got_disk, whole_plan.sub_disk)


# --------------------------------------------------------------------- #
# Streamed API restrictions and edge cases.
# --------------------------------------------------------------------- #
def _tiny_stream(tiny_program, tiny_layout, opts):
    return stream_trace(tiny_program, tiny_layout, opts, chunk_requests=64)


def test_streamed_rejects_busy_interval_capture(
    tiny_program, tiny_layout, small_trace_options
):
    stream = _tiny_stream(tiny_program, tiny_layout, small_trace_options)
    with pytest.raises(SimulationError, match="busy intervals"):
        simulate(
            stream, SubsystemParams(num_disks=4), collect_busy_intervals=True
        )


def test_streamed_rejects_whole_trace_plan(
    tiny_program, tiny_layout, small_trace_options
):
    trace = generate_trace(tiny_program, tiny_layout, small_trace_options)
    plan = ReplayPlan.for_trace(trace)
    stream = _tiny_stream(tiny_program, tiny_layout, small_trace_options)
    with pytest.raises(SimulationError, match="per chunk"):
        simulate(stream, SubsystemParams(num_disks=4), plan=plan)


def test_streamed_rejects_unknown_engine(
    tiny_program, tiny_layout, small_trace_options
):
    stream = _tiny_stream(tiny_program, tiny_layout, small_trace_options)
    with pytest.raises(SimulationError, match="unknown replay engine"):
        simulate(stream, SubsystemParams(num_disks=4), engine="warp")


def test_streamed_layout_mismatch_rejected(
    tiny_program, tiny_layout, small_trace_options
):
    stream = _tiny_stream(tiny_program, tiny_layout, small_trace_options)
    with pytest.raises(SimulationError, match="disks"):
        simulate(stream, SubsystemParams(num_disks=8))


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_stream_replays_cleanly(tiny_layout, engine):
    stream = TraceStream("empty", tiny_layout, 2.5, chunks=lambda: iter(()))
    res = simulate(stream, SubsystemParams(num_disks=4), engine=engine)
    assert res.num_requests == 0
    assert res.execution_time_s == 2.5  # compute time still elapses
    assert res.responses == ResponseSummary(0, 0.0, 0.0, 0.0, 0.0)


def test_consumed_one_shot_stream_raises(
    tiny_program, tiny_layout, small_trace_options
):
    chunks = list(
        _tiny_stream(
            tiny_program, tiny_layout, small_trace_options
        ).iter_chunks()
    )
    once = TraceStream(tiny_program.name, tiny_layout, 0.0, chunks=iter(chunks))
    params = SubsystemParams(num_disks=4)
    simulate(once, params, engine="segmented")
    with pytest.raises(TraceError, match="one-shot"):
        simulate(once, params, engine="segmented")


# --------------------------------------------------------------------- #
# Property: directives landing exactly on chunk boundaries.
# --------------------------------------------------------------------- #
def _boundary_directives(data, whole, chunk_requests, levels):
    """Directives whose nominal times coincide exactly with requests at
    chunk edges — the first request of a chunk and the last request of the
    previous one — where the merged-stream tie rule (directive ahead of a
    same-time request) and the chunk partition rule (a chunk takes every
    directive at or before its last request's time) interact."""
    times = whole.columns.nominal_time_s
    n = len(times)
    boundaries = [k for k in range(chunk_requests, n, chunk_requests)]
    if not boundaries:
        boundaries = [n - 1]
    picks = data.draw(
        st.lists(
            st.sampled_from(boundaries), min_size=1, max_size=3, unique=True
        )
    )
    directives = []
    for k in sorted(picks):
        disk = data.draw(st.integers(min_value=0, max_value=3))
        action = data.draw(
            st.sampled_from(["set_rpm", "spin_down", "spin_up"])
        )
        # Exactly the boundary request's nominal time (first of chunk), or
        # exactly the last request of the chunk before it.
        edge = data.draw(st.sampled_from([k, k - 1]))
        t = float(times[edge])
        if action == "set_rpm":
            call = PowerCall(
                PowerAction.SET_RPM, disk,
                rpm=data.draw(st.sampled_from(levels)),
            )
        elif action == "spin_down":
            call = PowerCall(PowerAction.SPIN_DOWN, disk)
        else:
            call = PowerCall(PowerAction.SPIN_UP, disk)
        directives.append(DirectiveRecord(t, call))
    return sorted(directives, key=lambda d: d.nominal_time_s)


@_SLOW_SETTINGS
@given(data=st.data())
def test_directives_on_chunk_boundaries_match_whole(data):
    """A directive at exactly a chunk-edge request's nominal time replays
    identically streamed and whole, on both engines."""
    program = data.draw(programs())
    layout = default_layout(program.arrays, num_disks=4)
    params = SubsystemParams(num_disks=4)
    chunk_requests = data.draw(st.sampled_from([1, 7, 64]))

    whole = generate_trace(program, layout)
    directives = _boundary_directives(
        data, whole, chunk_requests, params.drpm.levels
    )
    whole_d = whole.with_directives(directives)
    stream_d = stream_trace(
        program, layout, chunk_requests=chunk_requests
    ).with_directives(directives)

    results = {}
    for eng in ENGINES:
        res_w = simulate(whole_d, params, engine=eng)
        res_s = simulate(stream_d, params, engine=eng)
        assert res_w.num_directives == len(directives)
        _assert_stream_matches_whole(res_s, res_w)
        results[eng] = res_s
    assert results["stepwise"] == results["segmented"]


@_SLOW_SETTINGS
@given(data=st.data())
def test_directives_on_chunk_boundaries_with_faults(data):
    """The fault-injected variant: streamed replays reject fault plans by
    contract, so the cross-engine bit-equality runs on the whole trace —
    with the same boundary-timed directive stream — and the streamed path
    is pinned to its documented :class:`SimulationError`."""
    from repro.faults import FaultConfig, FaultRates

    program = data.draw(programs())
    layout = default_layout(program.arrays, num_disks=4)
    params = SubsystemParams(num_disks=4)
    chunk_requests = data.draw(st.sampled_from([7, 64]))
    faults = FaultConfig(
        seed=data.draw(st.integers(min_value=1, max_value=5)),
        rates=FaultRates(request_error_p=0.05, deadline_miss_p=0.1),
    )

    whole = generate_trace(program, layout)
    directives = _boundary_directives(
        data, whole, chunk_requests, params.drpm.levels
    )
    whole_d = whole.with_directives(directives)
    results = {
        eng: simulate(whole_d, params, engine=eng, faults=faults)
        for eng in ENGINES
    }
    assert results["stepwise"] == results["segmented"]

    stream_d = stream_trace(
        program, layout, chunk_requests=chunk_requests
    ).with_directives(directives)
    with pytest.raises(SimulationError, match="fault"):
        simulate(stream_d, params, engine="segmented", faults=faults)


# --------------------------------------------------------------------- #
# Mixed-RPM fused accounting: the multi-level SoA batch engages.
# --------------------------------------------------------------------- #
def test_mixed_rpm_vector_windows_use_fused_batch():
    """Disks settled at different RPM levels must still take the fused
    structure-of-arrays accounting batch (not the per-disk fold), bit
    equal to the stepwise engine.  The directive layout matters: the
    t=0 edits start RPM transitions, the mid-trace re-affirmations are
    no-ops whose directive bound makes the driver re-probe for a vector
    window after the transitions have settled."""
    from repro.experiments.scale import scale_cell

    cell = scale_cell(8, 20_000, chunk_requests=65536)
    levels = cell.params.drpm.levels
    trace = cell.trace()
    tmid = trace.requests[10_000].nominal_time_s
    directives = [
        DirectiveRecord(0.0, PowerCall(PowerAction.SET_RPM, d, rpm=levels[0]))
        for d in range(4)
    ] + [
        DirectiveRecord(tmid, PowerCall(PowerAction.SET_RPM, d, rpm=levels[0]))
        for d in range(4)
    ]
    with_d = trace.with_directives(directives)

    reset_replay_coverage()
    seg = simulate(with_d, cell.params, engine="segmented")
    cov = replay_coverage()
    assert cov["segments_fused"] >= 1
    assert cov["segments_fused_multirpm"] >= 1

    step = simulate(with_d, cell.params, engine="stepwise")
    assert seg == step
    # The mixed levels are real: the fused window spans disks idling at
    # different RPMs — the downshifted lanes at levels[0], the rest at
    # the nominal rate.
    idle_levels = {
        rpm for ds in seg.disk_stats for rpm in ds.idle_time_by_rpm
    }
    assert len(idle_levels) > 1
    for d in range(4):
        assert levels[0] in seg.disk_stats[d].idle_time_by_rpm


def test_single_rpm_vector_windows_still_fuse():
    """The plain (no-directive) scale stream keeps taking the fused batch
    — the multi-RPM lift must not regress the common single-level case."""
    from repro.experiments.scale import scale_cell

    cell = scale_cell(64, 50_000, chunk_requests=8192)
    reset_replay_coverage()
    seg = simulate(cell.stream(), cell.params, engine="segmented")
    cov = replay_coverage()
    assert cov["segments_fused"] >= 1
    assert cov["segments_fused_multirpm"] == 0
    assert seg == simulate(cell.stream(), cell.params, engine="stepwise")
