"""Timeline recorder: segment invariants, rendering, CSV, cross-checks."""

import pytest

from repro.analysis.cycles import EstimationModel
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.disksim.timeline import TimelineRecorder, render_timeline, timeline_to_csv
from repro.experiments.schemes import run_schemes
from repro.layout.files import FileEntry, SubsystemLayout
from repro.layout.striping import Striping
from repro.trace.request import IORequest, Trace
from repro.util.units import KB


def _layout(num_disks=2):
    return SubsystemLayout(
        num_disks=num_disks,
        entries=(FileEntry("A", 1024 * KB, Striping(0, num_disks, 64 * KB), 0),),
    )


def _run(params, controller=None):
    lay = _layout()
    reqs = (
        IORequest(0.0, "A", 0, 8 * KB, False),
        IORequest(2.0, "A", 64 * KB, 8 * KB, False),
    )
    rec = TimelineRecorder()
    res = simulate(Trace("t", lay, reqs, (), 5.0), params, controller, recorder=rec)
    return rec, res


def test_segments_partition_timeline(params):
    p = SubsystemParams(num_disks=2)
    rec, res = _run(p)
    rec.verify()
    for disk in rec.disks:
        total = sum(s.duration_s for s in rec.segments(disk))
        assert total == pytest.approx(res.execution_time_s, rel=1e-9)


def test_timeline_energy_matches_stats(params):
    p = SubsystemParams(num_disks=2)
    rec, res = _run(p)
    assert rec.total_energy_j() == pytest.approx(res.total_energy_j, rel=1e-9)
    for disk in rec.disks:
        assert rec.total_energy_j(disk) == pytest.approx(
            res.disk_stats[disk].total_energy_j, rel=1e-9
        )


def test_state_at_queries(params):
    p = SubsystemParams(num_disks=2)
    rec, _ = _run(p)
    # Disk 0 serves the first request at t=0: active at t=1 ms.
    seg = rec.state_at(0, 0.001)
    assert seg is not None and seg.state == "active"
    assert rec.state_at(0, 1.0).state == "idle"
    assert rec.state_at(0, 1e9) is None


def test_render_shows_states(params):
    p = SubsystemParams(num_disks=2)
    rec, _ = _run(p)
    art = render_timeline(rec, width=40)
    assert "disk0" in art and "disk1" in art
    assert "=" in art  # idle at full speed dominates
    assert "legend" not in art  # glyph legend is inline, not labeled
    empty = render_timeline(TimelineRecorder())
    assert empty == "(empty timeline)"


def test_render_marks_low_rpm_and_standby(params):
    """A CMDRPM-like scenario shows reduced-rpm buckets."""
    from repro.controllers.base import Controller, TimedDirective
    from repro.ir.nodes import PowerAction, PowerCall

    class Down(Controller):
        def timed_directives(self):
            return [
                TimedDirective(0.5, PowerCall(PowerAction.SET_RPM, 1, rpm=3000))
            ]

    p = SubsystemParams(num_disks=2)
    rec, _ = _run(p, Down())
    art = render_timeline(rec, width=40)
    disk1_row = [l for l in art.splitlines() if l.startswith("disk1")][0]
    assert "-" in disk1_row  # idle at a low level
    assert "~" in disk1_row or "-" in disk1_row


def test_csv_round_numbers(params):
    p = SubsystemParams(num_disks=2)
    rec, _ = _run(p)
    csv = timeline_to_csv(rec)
    lines = csv.strip().splitlines()
    assert lines[0] == "disk,state,start_s,end_s,power_w,rpm,cause"
    assert len(lines) > 4
    first = lines[1].split(",")
    assert first[0] == "0"
    float(first[2]), float(first[3]), float(first[4])


def test_recorder_through_scheme_suite(phase_program, phase_layout, small_trace_options):
    """The recorder composes with the full pipeline: run CMDRPM with one
    and confirm low-rpm residency shows up during the compute gap."""
    from repro.analysis.cycles import compute_timing
    from repro.controllers.compiler_directed import CompilerDirected
    from repro.power.insertion import plan_power_calls
    from repro.trace.generator import directives_at_positions, generate_trace
    import numpy as np
    from repro.analysis.cycles import measured_timing

    params = SubsystemParams(num_disks=4)
    trace = generate_trace(phase_program, phase_layout, small_trace_options)
    base = simulate(trace, params)
    meas = measured_timing(
        phase_program,
        np.array([r.nest for r in trace.requests]),
        np.array(base.request_responses),
    )
    plan = plan_power_calls(
        phase_program, phase_layout, params, "drpm",
        estimation=EstimationModel(relative_error=0.0), measured=meas,
    )
    rec = TimelineRecorder()
    simulate(
        trace.with_directives(
            directives_at_positions(plan.placements, compute_timing(phase_program))
        ),
        params,
        CompilerDirected("drpm"),
        recorder=rec,
    )
    rec.verify()
    # Mid-compute-phase (~2.2 s in) every disk idles at a reduced level.
    seg = rec.state_at(0, 2.2)
    assert seg is not None
    assert seg.state == "idle" and seg.rpm < 15000
