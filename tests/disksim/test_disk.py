"""Disk state machine: service, transitions, autonomous spin-down, and the
energy == sum(power x time) invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim.disk import Disk
from repro.disksim.params import DiskParams, DRPMParams
from repro.disksim.powermodel import PowerModel
from repro.util.errors import SimulationError


@pytest.fixture()
def pm() -> PowerModel:
    return PowerModel(DiskParams(), DRPMParams())


def _energy_invariants(disk: Disk) -> None:
    """The accounting identities every scenario must satisfy."""
    st_ = disk.stats
    # Residencies partition the disk's accounted timeline.
    assert st_.total_time_s == pytest.approx(disk.cursor_s, abs=1e-9)
    # Energy per state is consistent with its (piecewise-constant) power.
    for state in ("idle", "active", "standby", "spin_down", "spin_up", "rpm_shift"):
        t, e = st_.time_s[state], st_.energy_j[state]
        assert e >= -1e-12
        if t == 0:
            assert e == pytest.approx(0.0, abs=1e-9)


def test_pure_idle_energy(pm):
    d = Disk(0, pm)
    d.finalize(10.0)
    assert d.stats.energy_j["idle"] == pytest.approx(102.0)
    _energy_invariants(d)


def test_serve_full_speed(pm):
    d = Disk(0, pm)
    done = d.serve(1.0, 65536)
    svc = pm.service_time_s(65536, 15000)
    assert done == pytest.approx(1.0 + svc)
    d.finalize(2.0)
    assert d.stats.num_requests == 1
    assert d.stats.bytes_served == 65536
    assert d.stats.time_s["active"] == pytest.approx(svc)
    assert d.stats.energy_j["active"] == pytest.approx(svc * 13.5)
    _energy_invariants(d)


def test_serve_rejects_bad_size(pm):
    with pytest.raises(SimulationError):
        Disk(0, pm).serve(0.0, 0)


def test_serve_seek_classes(pm):
    d = Disk(0, pm)
    t1 = d.serve(0.0, 4096, seek="full")
    t2 = d.serve(t1, 4096, seek="seq")
    assert (t2 - t1) == pytest.approx(pm.service_time_s(4096, 15000, "seq"))


def test_queueing_back_to_back(pm):
    d = Disk(0, pm)
    done1 = d.serve(0.0, 8192)
    done2 = d.serve(0.0, 8192)  # issued at the same instant: queues
    assert done2 == pytest.approx(done1 + pm.service_time_s(8192, 15000))


def test_time_cannot_go_backwards(pm):
    d = Disk(0, pm)
    d.serve(5.0, 4096)
    with pytest.raises(SimulationError):
        d.advance(1.0)


def test_set_rpm_transition_accounting(pm):
    d = Disk(0, pm)
    d.set_rpm(1.0, 12600)
    dur = pm.transition_time_s(15000, 12600)
    d.finalize(10.0)
    assert d.rpm == 12600
    assert d.stats.num_rpm_shifts == 1
    assert d.stats.time_s["rpm_shift"] == pytest.approx(dur)
    assert d.stats.energy_j["rpm_shift"] == pytest.approx(dur * 10.2)
    assert d.stats.time_s["idle"] == pytest.approx(10.0 - dur)
    # Idle split between 15000 (before) and 12600 (after).
    assert d.stats.idle_time_by_rpm[15000] == pytest.approx(1.0)
    assert d.stats.idle_time_by_rpm[12600] == pytest.approx(10.0 - 1.0 - dur)
    _energy_invariants(d)


def test_set_rpm_noop_and_invalid(pm):
    d = Disk(0, pm)
    d.set_rpm(1.0, 15000)  # already there
    assert not d.in_transition
    with pytest.raises(SimulationError):
        d.set_rpm(2.0, 3100)


def test_set_rpm_while_standby_rejected(pm):
    d = Disk(0, pm)
    d.spin_down(0.0)
    d.advance(5.0)
    with pytest.raises(SimulationError):
        d.set_rpm(5.0, 3000)


def test_serve_at_reduced_speed(pm):
    d = Disk(0, pm)
    d.set_rpm(0.0, 3000)
    d.advance(5.0)  # transition long over
    done = d.serve(5.0, 65536)
    assert done - 5.0 == pytest.approx(pm.service_time_s(65536, 3000))
    d.finalize(6.0)
    _energy_invariants(d)


def test_request_waits_for_transition(pm):
    d = Disk(0, pm)
    d.set_rpm(1.0, 13800)  # transition [1.0, 1.0 + step]
    dur = pm.transition_time_s(15000, 13800)
    done = d.serve(1.0, 4096)
    assert done == pytest.approx(1.0 + dur + pm.service_time_s(4096, 13800))


def test_spin_down_and_reactive_spin_up(pm):
    d = Disk(0, pm)
    d.spin_down(0.0)
    d.advance(20.0)
    assert d.standby
    done = d.serve(20.0, 4096)
    # Pays the full 10.9 s spin-up before service — the TPM penalty.
    assert done == pytest.approx(
        20.0 + pm.spin_up_time_s + pm.service_time_s(4096, 15000)
    )
    d.finalize(done)
    assert d.stats.num_spin_downs == 1
    assert d.stats.num_spin_ups == 1
    assert d.stats.energy_j["spin_down"] == pytest.approx(13.0)
    assert d.stats.energy_j["spin_up"] == pytest.approx(135.0)
    assert d.stats.time_s["standby"] == pytest.approx(20.0 - 1.5)
    _energy_invariants(d)


def test_request_during_spin_down_waits_then_spins_up(pm):
    d = Disk(0, pm)
    d.spin_down(0.0)
    done = d.serve(0.5, 4096)  # arrives mid spin-down
    expected = 1.5 + pm.spin_up_time_s + pm.service_time_s(4096, 15000)
    assert done == pytest.approx(expected)


def test_explicit_spin_up_preactivation(pm):
    d = Disk(0, pm)
    d.spin_down(0.0)
    d.spin_up(5.0)  # pre-activation
    done = d.serve(5.0 + pm.spin_up_time_s, 4096)
    # Disk ready exactly at request time: no penalty.
    assert done == pytest.approx(
        5.0 + pm.spin_up_time_s + pm.service_time_s(4096, 15000)
    )


def test_deferred_call_applies_after_transition(pm):
    d = Disk(0, pm)
    d.set_rpm(0.0, 3000)  # 1.0 s ramp with default 0.05 s/step... (10 steps)
    dur = pm.transition_time_s(15000, 3000)
    d.set_rpm(dur / 2, 15000)  # arrives mid-ramp: deferred
    assert d.in_transition
    d.advance(10.0)
    assert d.rpm == 15000
    assert d.stats.num_rpm_shifts == 2
    _energy_invariants(d)


def test_auto_spindown_fires_after_threshold(pm):
    d = Disk(0, pm, auto_spindown_threshold_s=2.0)
    d.finalize(10.0)
    assert d.standby
    assert d.stats.num_spin_downs == 1
    assert d.stats.time_s["idle"] == pytest.approx(2.0)
    assert d.stats.time_s["spin_down"] == pytest.approx(1.5)
    assert d.stats.time_s["standby"] == pytest.approx(10.0 - 3.5)
    _energy_invariants(d)


def test_auto_spindown_rearms_after_service(pm):
    d = Disk(0, pm, auto_spindown_threshold_s=2.0)
    done = d.serve(1.0, 4096)  # activity before the threshold
    d.finalize(done + 10.0)
    # Spun down once, 2 s after the service completed.
    assert d.stats.num_spin_downs == 1
    assert d.stats.num_spin_ups == 0
    assert d.stats.time_s["standby"] == pytest.approx(10.0 - 3.5)
    _energy_invariants(d)


def test_auto_spindown_not_armed_without_threshold(pm):
    d = Disk(0, pm)
    d.finalize(100.0)
    assert not d.standby
    assert d.stats.num_spin_downs == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["serve", "set_rpm", "spin_down", "spin_up", "wait"]),
            st.floats(0.01, 3.0),
            st.integers(0, 10),
        ),
        min_size=1,
        max_size=12,
    ),
    st.booleans(),
)
def test_energy_identity_under_random_scenarios(ops, with_auto):
    """Property: for ANY legal call sequence, the per-state residencies
    partition the disk's timeline and every state's energy is non-negative
    and zero iff its residency is zero."""
    pm = PowerModel(DiskParams(), DRPMParams())
    d = Disk(0, pm, auto_spindown_threshold_s=4.0 if with_auto else None)
    t = 0.0
    for op, dt, level_idx in ops:
        t += dt
        t = max(t, d.cursor_s)
        if op == "serve":
            t = d.serve(t, 4096)
        elif op == "set_rpm":
            d.advance(t)  # autonomous spin-down may have fired by now
            if not d.standby:
                d.set_rpm(t, pm.levels[level_idx])
        elif op == "spin_down":
            d.spin_down(t)
        elif op == "spin_up":
            d.spin_up(t)
        else:
            d.advance(t)
    d.finalize(t + 5.0)
    stats = d.stats
    assert stats.total_time_s == pytest.approx(d.cursor_s, abs=1e-6)
    recomputed = 0.0
    for state in stats.time_s:
        assert stats.energy_j[state] >= -1e-9
        recomputed += stats.energy_j[state]
    assert recomputed == pytest.approx(stats.total_energy_j)
    # Power bounds: total energy between standby-floor and active-ceiling.
    assert stats.total_energy_j <= 13.5 * d.cursor_s + 135.0 * (stats.num_spin_ups + 1)
    assert stats.total_energy_j >= 2.4 * d.cursor_s - 1e-6
