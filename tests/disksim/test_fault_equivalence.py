"""Fault injection ⇔ engine equivalence and determinism invariants.

The deterministic fault layer (:mod:`repro.faults`) must preserve the
repo's core replay guarantees:

* **engine equivalence under faults** — for random programs × random
  fault regimes, the stepwise, segmented and auto engines produce
  bit-identical :class:`SimulationResult`\\ s (same times, energy, retry
  and miss counters, response streams, busy intervals);
* **zero-rate byte-identity** — an all-zero-rate :class:`FaultPlan` is
  indistinguishable from no fault plan at all, for every bundled Table 2
  workload under all seven schemes;
* **seed determinism** — the same :class:`FaultConfig` yields the same
  result in-process, across repeat runs, and across worker processes
  (the parallel replay path), while different seeds genuinely differ.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import _assert_results_identical  # noqa: E402
from strategies import fault_configs, programs  # noqa: E402

from repro.analysis.cycles import EstimationModel
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.experiments.parallel import ReplayTask, SuiteExecutor
from repro.experiments.schemes import SCHEME_NAMES, run_schemes, run_workload
from repro.faults import FaultConfig, FaultRates
from repro.layout.files import default_layout
from repro.trace.generator import TraceOptions, generate_trace
from repro.workloads import all_workloads

ENGINES = ("stepwise", "segmented", "auto")

_SLOW_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_suites_identical(ref_suite, other_suite):
    assert set(ref_suite.results) == set(other_suite.results)
    for scheme, ref_result in ref_suite.results.items():
        _assert_results_identical(other_suite.results[scheme], ref_result)


# --------------------------------------------------------------------- #
# Property: random programs × random fault regimes, every engine.
# --------------------------------------------------------------------- #
@_SLOW_SETTINGS
@given(data=st.data())
def test_random_faulty_replays_bit_identical(data):
    program = data.draw(programs())
    faults = data.draw(fault_configs())
    num_disks = data.draw(st.sampled_from([1, 4]))
    layout = default_layout(program.arrays, num_disks=num_disks)
    params = SubsystemParams(num_disks=num_disks)
    options = TraceOptions(max_request_bytes=4096)
    estimation = EstimationModel(relative_error=0.10)
    suites = {
        eng: run_schemes(
            program, layout, params, options, estimation,
            engine=eng, faults=faults,
        )
        for eng in ENGINES
    }
    _assert_suites_identical(suites["stepwise"], suites["segmented"])
    _assert_suites_identical(suites["stepwise"], suites["auto"])


# --------------------------------------------------------------------- #
# Zero-rate plans are byte-identical to no plan at all.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
def test_zero_rate_faults_are_invisible(workload):
    """A FaultConfig whose every rate is zero must reproduce the clean
    suite bit for bit — all seven schemes, both concrete engines."""
    null = FaultConfig(seed=12345, rates=FaultRates())
    assert null.is_null
    for eng in ("stepwise", "segmented"):
        clean = run_workload(workload, engine=eng)
        faulted = run_workload(workload, engine=eng, faults=null)
        assert set(clean.results) == set(SCHEME_NAMES)
        _assert_suites_identical(clean, faulted)


# --------------------------------------------------------------------- #
# Seed determinism: same seed same result, across processes too.
# --------------------------------------------------------------------- #
def _faulty_config() -> FaultConfig:
    return FaultConfig(
        seed=7,
        rates=FaultRates(
            spinup_jitter_p=0.5,
            spinup_fail_p=0.3,
            request_error_p=0.02,
            deadline_miss_p=0.5,
        ),
    )


def test_same_seed_same_result_repeat_runs(
    tiny_program, tiny_layout, small_trace_options
):
    trace = generate_trace(tiny_program, tiny_layout, small_trace_options)
    params = SubsystemParams(num_disks=4)
    faults = _faulty_config()
    for eng in ENGINES:
        a = simulate(trace, params, engine=eng, faults=faults)
        b = simulate(trace, params, engine=eng, faults=faults)
        _assert_results_identical(a, b)


def test_different_seed_different_draws(
    phase_program, phase_layout
):
    """Two seeds must not share the request-error schedule (the plan is
    a function of the seed, not just the rates)."""
    from repro.disksim.replay import ReplayPlan
    from repro.faults import FaultPlan

    trace = generate_trace(phase_program, phase_layout, TraceOptions())
    plan = ReplayPlan.for_trace(trace)
    rates = FaultRates(request_error_p=0.05)
    a = FaultPlan(FaultConfig(seed=1, rates=rates), plan)
    b = FaultPlan(FaultConfig(seed=2, rates=rates), plan)
    assert a.sub_errors and b.sub_errors
    assert a.sub_errors != b.sub_errors


def test_same_seed_same_result_across_processes(
    phase_program, phase_layout
):
    """The parallel replay path (worker processes) must reproduce the
    in-process faulted result exactly: every fault event is a pure
    function of (seed, kind, index), never of process state."""
    trace = generate_trace(phase_program, phase_layout, TraceOptions())
    params = SubsystemParams(num_disks=4)
    faults = _faulty_config()
    ref = {
        scheme: simulate_scheme(trace, params, scheme, faults)
        for scheme in ("TPM", "DRPM")
    }
    tasks = [
        ReplayTask(scheme=s, trace=trace, params=params, faults=faults)
        for s in ("TPM", "DRPM")
    ]
    executor = SuiteExecutor(jobs=2, clamp_to_cpus=False)
    assert not executor.serial
    for task, result in zip(tasks, executor.run_replays(tasks)):
        _assert_results_identical(result, ref[task.scheme])


def simulate_scheme(trace, params, scheme, faults):
    from repro.controllers.drpm import ReactiveDRPM
    from repro.controllers.tpm import ReactiveTPM

    ctrl = (
        ReactiveTPM(params.effective_tpm_threshold_s)
        if scheme == "TPM"
        else ReactiveDRPM(params.drpm)
    )
    return simulate(trace, params, ctrl, faults=faults)


# --------------------------------------------------------------------- #
# The fault counters actually fire (the suite above would pass vacuously
# if the regimes never injected anything).
# --------------------------------------------------------------------- #
def test_faulty_regime_is_not_vacuous(phase_program, phase_layout):
    trace = generate_trace(phase_program, phase_layout, TraceOptions())
    params = SubsystemParams(num_disks=4)
    result = simulate(
        trace, params, engine="stepwise",
        faults=FaultConfig(seed=3, rates=FaultRates(request_error_p=0.05)),
    )
    errors = sum(d.num_request_errors for d in result.disk_stats)
    retries = sum(d.num_request_retries for d in result.disk_stats)
    timeouts = sum(d.num_request_timeouts for d in result.disk_stats)
    assert errors > 0
    # Every failed attempt is followed by exactly one of: a retry, or the
    # timeout that abandons the chain (see Disk.serve_faulty).
    assert retries + timeouts == errors
    clean = simulate(trace, params, engine="stepwise")
    assert result.execution_time_s > clean.execution_time_s
