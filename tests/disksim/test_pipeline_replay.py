"""Pipelined streamed replay ⇔ in-process streamed replay equivalence.

``simulate(stream, pipeline=True)`` runs the stream's chunk factory in a
forked producer process and feeds the replay through the shared-memory
ring (:mod:`repro.trace.ring`).  The transport re-splits chunks at slot
capacity — a re-chunking of the same request sequence, which the streamed
replay is already required to replay bit-identically — so the pipelined
result must equal the plain streamed result exactly, for both engines,
with and without directive streams.
"""

import pytest

from repro import obs
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.ir.nodes import PowerAction, PowerCall
from repro.trace.generator import TraceOptions, generate_trace, stream_trace
from repro.trace.request import DirectiveRecord
from repro.trace.ring import pipeline_available
from repro.util.errors import SimulationError

pytestmark = pytest.mark.skipif(
    not pipeline_available(), reason="requires the fork start method"
)

ENGINES = ("stepwise", "segmented")


def test_pipelined_replay_bit_identical_both_engines(
    phase_program, phase_layout
):
    params = SubsystemParams(num_disks=4)
    stream = stream_trace(
        phase_program, phase_layout, chunk_requests=512
    )
    for eng in ENGINES:
        plain = simulate(stream, params, engine=eng)
        piped = simulate(stream, params, engine=eng, pipeline=True)
        assert piped == plain


def test_pipelined_replay_with_directives(phase_program, phase_layout):
    params = SubsystemParams(num_disks=4)
    levels = params.drpm.levels
    whole = generate_trace(phase_program, phase_layout, TraceOptions())
    tmid = float(whole.columns.nominal_time_s[len(whole.columns) // 2])
    directives = [
        DirectiveRecord(0.0, PowerCall(PowerAction.SET_RPM, 1, rpm=levels[0])),
        DirectiveRecord(tmid, PowerCall(PowerAction.SPIN_DOWN, 3)),
    ]
    stream = stream_trace(
        phase_program, phase_layout, chunk_requests=512
    ).with_directives(directives)
    plain = simulate(stream, params, engine="segmented")
    piped = simulate(stream, params, engine="segmented", pipeline=True)
    assert piped == plain
    assert piped.num_directives == len(directives)


def test_pipelined_replay_scale_cell():
    """The scale grid's synthetic streams — the pipeline's actual target —
    replay identically through the ring."""
    from repro.experiments.scale import scale_cell

    cell = scale_cell(8, 20_000, chunk_requests=4096)
    plain = simulate(cell.stream(), cell.params, engine="segmented")
    piped = simulate(
        cell.stream(), cell.params, engine="segmented", pipeline=True
    )
    assert piped == plain


def test_pipeline_rejects_whole_trace(phase_program, phase_layout):
    whole = generate_trace(phase_program, phase_layout, TraceOptions())
    with pytest.raises(SimulationError, match="pipeline=True requires"):
        simulate(whole, SubsystemParams(num_disks=4), pipeline=True)


def test_pipeline_metrics_surface_through_obs(phase_program, phase_layout):
    """With observability on, a pipelined replay reports the ring's
    counters (chunks, stall seconds, queue depth) as ``pipeline.*``."""
    params = SubsystemParams(num_disks=4)
    stream = stream_trace(phase_program, phase_layout, chunk_requests=512)
    obs.enable()
    try:
        obs.metrics.reset()
        simulate(stream, params, engine="segmented", pipeline=True)
        counters = obs.metrics.snapshot()["counters"]
    finally:
        obs.disable()
        obs.metrics.reset()
    assert counters["pipeline.replays"] == 1
    assert counters["pipeline.chunks"] >= 1
    assert "pipeline.producer_stall_s" in counters or True
    # Stall counters are seconds scaled; presence depends on rounding, but
    # the structural counters must always be there.
    assert counters["pipeline.queue_depth_samples"] == counters["pipeline.chunks"]
