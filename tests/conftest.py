"""Shared fixtures: small programs, layouts, and parameter sets.

The fixtures here build *small* deterministic inputs (seconds of simulated
time, kilobytes of data) so the unit suite stays fast; the integration
tests build the real Table 2 workloads.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.disksim.params import DiskParams, DRPMParams, SubsystemParams
from repro.disksim.powermodel import PowerModel
from repro.ir.builder import ProgramBuilder
from repro.layout.files import default_layout
from repro.trace.generator import TraceOptions
from repro.util.units import KB


# Coverage instrumentation (pytest-cov in CI, tools/measure_coverage.py
# locally) slows every example enough to trip hypothesis's per-example
# deadline; the "coverage" profile drops it.  Select with
# HYPOTHESIS_PROFILE=coverage (the CI coverage job does).
settings.register_profile(
    "coverage",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture()
def params() -> SubsystemParams:
    """Paper Table 1 parameters, 4 disks for speed."""
    return SubsystemParams(num_disks=4)


@pytest.fixture()
def power_model(params: SubsystemParams) -> PowerModel:
    return PowerModel(params.disk, params.drpm)


@pytest.fixture()
def tiny_program():
    """Two nests over two 1-D arrays: nest 0 sweeps the first half of A into
    B; nest 1 reads the third quarter of B.  Element counts are chosen so
    stripe boundaries land mid-array (8192 eight-byte elements per 64 KB
    stripe)."""
    b = ProgramBuilder("tiny")
    S = 8192  # elements per 64 KB stripe
    A = b.array("A", (4 * S,))
    B = b.array("B", (4 * S,))
    with b.nest("i", 0, 2 * S) as i:
        b.stmt(reads=[A[i]], writes=[B[i]], cycles=100)
    with b.nest("j", 0, S) as j:
        b.stmt(reads=[B[j + 2 * S]], cycles=50)
    return b.build()


@pytest.fixture()
def tiny_layout(tiny_program):
    return default_layout(tiny_program.arrays, num_disks=4, stripe_factor=4)


@pytest.fixture()
def phase_program():
    """An I/O burst nest, a long pure-compute nest, another burst — the
    minimal shape exhibiting exploitable idle gaps."""
    b = ProgramBuilder("phases")
    N = 256
    A = b.array("A", (N, 1024))  # 8 KB rows, 2 MB total
    Bm = b.array("B", (N, 1024))
    W = b.array("W", (2, 64), memory_resident=True)
    with b.nest("i0", 0, N) as i:
        with b.loop("j0", 0, 1024) as j:
            b.stmt(reads=[A[i, j]], cycles=1.0)
    with b.nest("c", 0, 100) as i:
        with b.loop("k", 0, 64) as k:
            b.stmt(reads=[W[0, k]], writes=[W[1, k]], cycles=750e6 * 3.0 / 100 / 64)
    with b.nest("i1", 0, N) as i:
        with b.loop("j1", 0, 1024) as j:
            b.stmt(reads=[Bm[i, j]], cycles=1.0)
    return b.build()


@pytest.fixture()
def phase_layout(phase_program):
    return default_layout(phase_program.arrays, num_disks=4, stripe_factor=4)


@pytest.fixture()
def small_trace_options() -> TraceOptions:
    return TraceOptions(
        buffer_cache_bytes=512 * KB, cache_line_bytes=8 * KB, max_request_bytes=8 * KB
    )


def _assert_results_identical(a, b) -> None:
    """Field-by-field equality of two SimulationResults (no tolerance —
    the cache and the parallel engine must be *bit*-identical to the
    serial uncached path)."""
    assert a.scheme == b.scheme
    assert a.program_name == b.program_name
    assert a.execution_time_s == b.execution_time_s
    assert a.num_requests == b.num_requests
    assert a.num_directives == b.num_directives
    assert a.responses == b.responses
    assert a.request_responses == b.request_responses
    assert a.busy_intervals == b.busy_intervals
    assert len(a.disk_stats) == len(b.disk_stats)
    for da, db in zip(a.disk_stats, b.disk_stats):
        assert da == db  # DiskStats is a dataclass: compares every field


@pytest.fixture()
def assert_results_identical():
    return _assert_results_identical
