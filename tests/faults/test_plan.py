"""Unit tests for the fault-regime layer: rates validation, the severity
shorthand, the CLI spec parser, and FaultPlan's deterministic draws."""

import pytest

from repro.disksim.replay import ReplayPlan
from repro.faults import (
    DEFAULT_FAULT_SEED,
    FaultConfig,
    FaultPlan,
    FaultRates,
    parse_fault_rates,
)
from repro.ir.nodes import PowerAction, PowerCall
from repro.trace.generator import generate_trace
from repro.trace.request import DirectiveRecord
from repro.util.errors import ConfigError


# --------------------------------------------------------------------- #
# FaultRates
# --------------------------------------------------------------------- #
def test_default_rates_are_null():
    rates = FaultRates()
    assert rates.is_null
    assert FaultConfig().is_null
    assert FaultConfig().seed == DEFAULT_FAULT_SEED


@pytest.mark.parametrize(
    "kwargs",
    [
        {"spinup_jitter_p": -0.1},
        {"spinup_fail_p": 1.5},
        {"request_error_p": 2.0},
        {"deadline_miss_p": -1.0},
        {"spinup_jitter_max_s": -1.0},
        {"request_backoff_s": -0.01},
        {"request_timeout_s": -1.0},
        {"deadline_miss_max_s": -5.0},
        {"spinup_max_retries": -1},
        {"request_max_retries": 0},
    ],
)
def test_invalid_rates_rejected(kwargs):
    with pytest.raises(ConfigError):
        FaultRates(**kwargs)


def test_from_severity_mapping():
    r = FaultRates.from_severity(0.2)
    assert r.spinup_jitter_p == 0.2
    assert r.spinup_fail_p == 0.2
    assert r.deadline_miss_p == 0.2
    assert r.request_error_p == pytest.approx(0.2 / 50.0)
    assert not r.is_null
    assert FaultRates.from_severity(0.0).is_null
    with pytest.raises(ConfigError):
        FaultRates.from_severity(1.5)


# --------------------------------------------------------------------- #
# parse_fault_rates
# --------------------------------------------------------------------- #
def test_parse_explicit_knobs():
    r = parse_fault_rates("deadline_miss_p=0.1, request_error_p=0.002")
    assert r.deadline_miss_p == 0.1
    assert r.request_error_p == 0.002
    assert r.spinup_fail_p == 0.0


def test_parse_severity_shorthand_with_override():
    r = parse_fault_rates("severity=0.2,request_timeout_s=1.0")
    assert r == FaultRates.from_severity(0.2, request_timeout_s=1.0)


def test_parse_int_knobs_stay_int():
    r = parse_fault_rates("request_max_retries=2,spinup_max_retries=1")
    assert r.request_max_retries == 2 and r.spinup_max_retries == 1


@pytest.mark.parametrize(
    "spec", ["bogus=1", "deadline_miss_p", "deadline_miss_p=oops"]
)
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ConfigError):
        parse_fault_rates(spec)


# --------------------------------------------------------------------- #
# FaultPlan draws
# --------------------------------------------------------------------- #
@pytest.fixture()
def replay_plan(tiny_program, tiny_layout, small_trace_options):
    trace = generate_trace(tiny_program, tiny_layout, small_trace_options)
    return ReplayPlan.for_trace(trace)


def test_zero_error_rate_builds_no_request_schedule(replay_plan):
    plan = FaultPlan(FaultConfig(seed=9), replay_plan)
    assert plan.request_flags is None
    assert not plan.sub_errors
    assert not plan.flagged_requests
    assert plan.spinup_fault(0, 0) is None  # zero spin-up rates short-circuit


def test_request_schedule_is_seed_deterministic(replay_plan):
    cfg = FaultConfig(seed=5, rates=FaultRates(request_error_p=0.05))
    a = FaultPlan(cfg, replay_plan)
    b = FaultPlan(cfg, replay_plan)
    assert a.sub_errors == b.sub_errors
    assert a.request_flags == b.request_flags
    assert a.flagged_requests == b.flagged_requests
    assert a.sub_errors  # non-vacuous at this rate/size
    for count in a.sub_errors.values():
        assert 1 <= count <= cfg.rates.request_max_retries


def test_flags_are_consistent_with_sub_errors(replay_plan):
    cfg = FaultConfig(seed=5, rates=FaultRates(request_error_p=0.05))
    plan = FaultPlan(cfg, replay_plan)
    indptr = replay_plan.indptr
    for ri, flagged in enumerate(plan.request_flags):
        subs = range(int(indptr[ri]), int(indptr[ri + 1]))
        assert flagged == any(j in plan.sub_errors for j in subs)
    assert plan.flagged_requests == [
        ri for ri, f in enumerate(plan.request_flags) if f
    ]


def test_spinup_fault_memoized_and_keyed(replay_plan):
    cfg = FaultConfig(
        seed=5, rates=FaultRates(spinup_fail_p=0.6, spinup_jitter_p=0.6)
    )
    plan = FaultPlan(cfg, replay_plan)
    outcomes = {(d, o): plan.spinup_fault(d, o) for d in range(4) for o in range(8)}
    for (d, o), fault in outcomes.items():
        assert plan.spinup_fault(d, o) == fault  # memo: pure per key
        if fault is not None:
            assert fault.failures <= cfg.rates.spinup_max_retries
            assert len(fault.jitter_s) == fault.attempts
    # At these rates, some events must be faulty and keys must differ.
    faulty = [f for f in outcomes.values() if f is not None]
    assert faulty
    assert len(set(outcomes.values())) > 1


# --------------------------------------------------------------------- #
# Deadline-miss delays
# --------------------------------------------------------------------- #
_TOP = 12000


def _directives():
    return (
        DirectiveRecord(1.0, PowerCall(PowerAction.SPIN_UP, disk=0)),
        DirectiveRecord(2.0, PowerCall(PowerAction.SPIN_DOWN, disk=1)),
        DirectiveRecord(3.0, PowerCall(PowerAction.SET_RPM, disk=2, rpm=_TOP)),
        DirectiveRecord(4.0, PowerCall(PowerAction.SET_RPM, disk=3, rpm=3000)),
    )


def test_zero_miss_rate_returns_stream_unchanged(replay_plan):
    plan = FaultPlan(FaultConfig(seed=1), replay_plan)
    out, misses = plan.delay_trace_directives(_directives(), _TOP)
    assert out == _directives()
    assert misses == ()


def test_certain_miss_delays_only_preactivation(replay_plan):
    rates = FaultRates(deadline_miss_p=1.0, deadline_miss_max_s=5.0)
    plan = FaultPlan(FaultConfig(seed=1, rates=rates), replay_plan)
    out, misses = plan.delay_trace_directives(_directives(), _TOP)
    # Exactly the spin_up and the ramp-to-top carry deadlines.
    assert {m[0] for m in misses} == {0, 2}
    by_disk = {d.call.disk: d for d in out}
    assert by_disk[0].nominal_time_s >= 1.0
    assert by_disk[2].nominal_time_s >= 3.0
    # Down-directives never slip.
    assert by_disk[1].nominal_time_s == 2.0
    assert by_disk[3].nominal_time_s == 4.0
    for disk, t0, t1 in misses:
        assert t1 >= t0 and t1 - t0 <= rates.deadline_miss_max_s
    # The delayed stream stays time-sorted.
    times = [d.nominal_time_s for d in out]
    assert times == sorted(times)


def test_degraded_counts_cover_window_subrequests(replay_plan):
    times = replay_plan.columns.nominal_time_s
    indptr = replay_plan.indptr
    sub_disk = replay_plan.sub_disk
    t0, t1 = float(times[0]), float(times[min(len(times) - 1, 8)]) + 1e-9
    disk = int(sub_disk[0])
    counts = FaultPlan.degraded_counts(replay_plan, ((disk, t0, t1),))
    assert counts.get(disk, 0) >= 1
    # Empty and inverted windows degrade nothing.
    assert FaultPlan.degraded_counts(replay_plan, ((disk, t0, t0),)) == {}
    assert FaultPlan.degraded_counts(replay_plan, ()) == {}
