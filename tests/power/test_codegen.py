"""Plan rendering and IR call insertion (paper Figure 2(d) form)."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.nodes import Loop, PowerAction, PowerCall
from repro.power.codegen import insert_calls_into_nest, render_plan
from repro.trace.generator import CallPlacement
from repro.util.errors import TransformError


def _prog():
    b = ProgramBuilder("p")
    A = b.array("A", (16, 8))
    with b.nest("i", 0, 16) as i:
        with b.loop("j", 0, 8) as j:
            b.stmt(reads=[A[i, j]], cycles=2)
    with b.nest("k", 0, 4) as k:
        b.stmt(reads=[A[k, 0]], cycles=1)
    return b.build()


def _call(disk=1, rpm=None):
    if rpm:
        return PowerCall(PowerAction.SET_RPM, disk, rpm=rpm)
    return PowerCall(PowerAction.SPIN_DOWN, disk)


def test_render_plan_weaves_calls():
    prog = _prog()
    placements = [
        CallPlacement(0, 4, _call(rpm=3000)),
        CallPlacement(0, 12, _call(disk=2, rpm=15000)),
        CallPlacement(1, 0, _call()),
    ]
    text = render_plan(prog, placements)
    assert "set_RPM(3000, disk1)  # before iteration 4" in text
    assert "for i in [0, 4): ... body ..." in text
    assert "for i in [4, 12): ... body ..." in text
    assert "for i in [12, 16): ... body ..." in text
    assert "spin_down(disk1)  # before iteration 0" in text


def test_render_plan_fractional_position():
    prog = _prog()
    text = render_plan(prog, [CallPlacement(0, 3, _call(rpm=4200), fraction=0.5)])
    assert "within iteration 3 (after its accesses)" in text
    assert "for i in [3, 4): ... body continues after the call ..." in text


def test_render_plan_rejects_bad_nest():
    with pytest.raises(TransformError):
        render_plan(_prog(), [CallPlacement(9, 0, _call())])


def test_render_plan_without_calls_prints_nest():
    text = render_plan(_prog(), [])
    assert "for i in [0, 16):" in text


def test_insert_calls_peels_loops():
    prog = _prog()
    nest = prog.nest(0)
    nodes = insert_calls_into_nest(
        nest,
        [CallPlacement(0, 4, _call(rpm=3000)), CallPlacement(0, 12, _call(rpm=15000))],
    )
    kinds = [type(n).__name__ for n in nodes]
    assert kinds == ["Loop", "PowerCall", "Loop", "PowerCall", "Loop"]
    loops = [n for n in nodes if isinstance(n, Loop)]
    assert [(l.lower, l.upper) for l in loops] == [(0, 4), (4, 12), (12, 16)]
    total = sum(l.total_statement_executions() for l in loops)
    assert total == nest.total_statement_executions()


def test_insert_calls_at_edges_and_errors():
    prog = _prog()
    nest = prog.nest(0)
    nodes = insert_calls_into_nest(nest, [CallPlacement(0, 0, _call())])
    assert isinstance(nodes[0], PowerCall)
    nodes = insert_calls_into_nest(nest, [CallPlacement(0, 16, _call())])
    assert isinstance(nodes[-1], PowerCall)
    with pytest.raises(TransformError):
        insert_calls_into_nest(nest, [CallPlacement(0, 17, _call())])
    with pytest.raises(TransformError):
        insert_calls_into_nest(Loop("x", 1, 5, ()), [CallPlacement(0, 1, _call())])


def test_render_real_plan_end_to_end(phase_program, phase_layout, small_trace_options):
    """A real CMDRPM plan renders with every inserted call present."""
    import numpy as np

    from repro.analysis.cycles import EstimationModel, measured_timing
    from repro.disksim.params import SubsystemParams
    from repro.disksim.simulator import simulate
    from repro.power.insertion import plan_power_calls
    from repro.trace.generator import generate_trace

    params = SubsystemParams(num_disks=4)
    trace = generate_trace(phase_program, phase_layout, small_trace_options)
    base = simulate(trace, params)
    meas = measured_timing(
        phase_program,
        np.array([r.nest for r in trace.requests]),
        np.array(base.request_responses),
    )
    plan = plan_power_calls(
        phase_program, phase_layout, params, "drpm",
        estimation=EstimationModel(relative_error=0.0), measured=meas,
    )
    text = render_plan(phase_program, plan.placements)
    assert text.count("set_RPM") == plan.num_calls
