"""Equation (1) pre-activation distance and placement helpers."""

import pytest

from repro.analysis.cycles import compute_timing
from repro.ir.builder import ProgramBuilder
from repro.power.preactivation import (
    place_at_or_after,
    place_before,
    preactivation_distance,
)
from repro.util.errors import AnalysisError


def _timing(trips=(10, 20), iter_cycles=(100, 50), clock=1000.0):
    b = ProgramBuilder("p", clock_hz=clock)
    A = b.array("A", (64, 4))
    for k, (n, c) in enumerate(zip(trips, iter_cycles)):
        with b.nest(f"i{k}", 0, n) as i:
            b.stmt(reads=[A[i, 0]], cycles=c)
    return compute_timing(b.build())


def test_eq1_formula():
    # d = ceil(Tsu / (s + Tm)) — the paper's Equation (1).
    assert preactivation_distance(10.9, 1.0, 0.0) == 11
    assert preactivation_distance(10.9, 1.0, 0.1) == 10
    assert preactivation_distance(0.0, 1.0) == 0
    assert preactivation_distance(0.05, 0.1) == 1


def test_eq1_validation():
    with pytest.raises(AnalysisError):
        preactivation_distance(-1.0, 1.0)
    with pytest.raises(AnalysisError):
        preactivation_distance(1.0, 0.0)


def test_place_before_within_nest():
    t = _timing()  # nest 0: 0.1 s/iter; nest 1: 0.05 s/iter
    # 0.3 s of lead inside nest 1 = ceil(0.3/0.05) = 6 iterations.
    nest, ordinal = place_before(t, 1, 10, lead_s=0.3)
    assert (nest, ordinal) == (1, 4)


def test_place_before_spills_into_previous_nest():
    t = _timing()
    # From nest 1 iteration 2 (0.1 s of its time), lead 0.5 s: 0.4 s spills
    # into nest 0 => ceil(0.4/0.1) = 4 iterations before nest 0's end.
    nest, ordinal = place_before(t, 1, 2, lead_s=0.5)
    assert (nest, ordinal) == (0, 6)


def test_place_before_clamps_at_program_start():
    t = _timing()
    assert place_before(t, 0, 1, lead_s=1e9) == (0, 0)


def test_place_before_bad_nest():
    t = _timing()
    with pytest.raises(AnalysisError):
        place_before(t, 5, 0, lead_s=0.1)


def test_place_at_or_after_boundaries():
    t = _timing()
    assert place_at_or_after(t, 0.0) == (0, 0)
    assert place_at_or_after(t, 0.25) == (0, 3)  # mid-iteration rounds up
    assert place_at_or_after(t, 0.30) == (0, 3)  # exact boundary stays
    assert place_at_or_after(t, 1.0) == (0, 10)  # nest 0 end
    assert place_at_or_after(t, 1.05) == (1, 1)
    # Past the program end clamps to the last position.
    assert place_at_or_after(t, 99.0) == (1, 20)
