"""Break-even formulas."""

import pytest

from repro.disksim.params import DiskParams, DRPMParams
from repro.disksim.powermodel import PowerModel
from repro.power.breakeven import (
    drpm_breakeven_s,
    drpm_breakeven_table,
    drpm_cycle_energy_j,
    tpm_breakeven_s,
    tpm_cycle_energy_j,
)


@pytest.fixture()
def pm():
    return PowerModel(DiskParams(), DRPMParams())


def test_tpm_breakeven_about_15s(pm):
    be = tpm_breakeven_s(pm)
    assert 15.0 < be < 15.5


def test_tpm_cycle_energy_neutral_at_breakeven(pm):
    be = tpm_breakeven_s(pm)
    idle_cost = pm.idle_power_w(15000) * be
    assert tpm_cycle_energy_j(pm, be) == pytest.approx(idle_cost, rel=1e-9)
    # Longer gaps save; shorter gaps lose.
    assert tpm_cycle_energy_j(pm, be + 10) < pm.idle_power_w(15000) * (be + 10)
    assert tpm_cycle_energy_j(pm, be - 1) > pm.idle_power_w(15000) * (be - 1)


def test_tpm_cycle_requires_fitting_transitions(pm):
    with pytest.raises(ValueError):
        tpm_cycle_energy_j(pm, 12.0)  # < 1.5 + 10.9


def test_drpm_cycle_energy(pm):
    gap = 10.0
    e = drpm_cycle_energy_j(pm, gap, 3000)
    t_trans = 2 * pm.transition_time_s(15000, 3000)
    expected = 2 * pm.transition_energy_j(15000, 3000) + pm.idle_power_w(3000) * (
        gap - t_trans
    )
    assert e == pytest.approx(expected)
    with pytest.raises(ValueError):
        drpm_cycle_energy_j(pm, 0.5 * t_trans, 3000)


def test_drpm_breakeven_neutrality(pm):
    for rpm in (3000, 9000, 13800):
        be = drpm_breakeven_s(pm, rpm)
        idle_cost = pm.idle_power_w(15000) * be
        assert drpm_cycle_energy_j(pm, be, rpm) == pytest.approx(idle_cost, rel=1e-6)


def test_drpm_breakeven_zero_at_top(pm):
    assert drpm_breakeven_s(pm, 15000) == 0.0


def test_breakeven_table_is_small_vs_tpm(pm):
    """The whole point of DRPM for servers: every level's break-even is far
    below TPM's ~15 s, so second-scale gaps become exploitable."""
    table = drpm_breakeven_table(pm)
    assert set(table) == set(pm.levels)
    assert all(v < 2.5 for v in table.values())
    assert max(table.values()) < tpm_breakeven_s(pm)
