"""Per-gap planner: optimality and feasibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.idle import IdleGap
from repro.disksim.params import DiskParams, DRPMParams
from repro.disksim.powermodel import PowerModel
from repro.power.breakeven import drpm_cycle_energy_j, tpm_breakeven_s
from repro.power.planner import GapMode, plan_drpm_gap, plan_gaps, plan_tpm_gap
from repro.util.errors import AnalysisError


@pytest.fixture()
def pm():
    return PowerModel(DiskParams(), DRPMParams())


def _gap(duration, trailing=False, start=100.0):
    return IdleGap(disk=0, start_s=start, end_s=start + duration, trailing=trailing)


# --------------------------------------------------------------------- #
# TPM
# --------------------------------------------------------------------- #
def test_tpm_short_gap_no_action(pm):
    dec = plan_tpm_gap(_gap(10.0), pm)
    assert dec.mode is GapMode.NONE
    assert not dec.acts


def test_tpm_long_gap_spins_down(pm):
    dec = plan_tpm_gap(_gap(30.0), pm)
    assert dec.mode is GapMode.STANDBY
    assert dec.down_at_s == pytest.approx(100.0)
    assert dec.up_at_s == pytest.approx(130.0 - pm.spin_up_time_s)
    assert dec.est_saving_j > 0


def test_tpm_breakeven_boundary(pm):
    be = tpm_breakeven_s(pm)
    assert not plan_tpm_gap(_gap(be - 0.01), pm).acts
    assert plan_tpm_gap(_gap(be + 0.01), pm).acts


def test_tpm_trailing_gap_needs_no_spin_up(pm):
    dec = plan_tpm_gap(_gap(5.0, trailing=True), pm)
    assert dec.mode is GapMode.STANDBY
    assert dec.up_at_s is None
    # Trailing break-even is much shorter (no 135 J spin-up to amortize).
    assert not plan_tpm_gap(_gap(1.0, trailing=True), pm).acts


def test_tpm_safety_margin_shrinks_usable(pm):
    be = tpm_breakeven_s(pm)
    with_margin = plan_tpm_gap(_gap(be + 0.05), pm, safety_margin_s=1.0)
    assert not with_margin.acts
    with pytest.raises(AnalysisError):
        plan_tpm_gap(_gap(20.0), pm, safety_margin_s=-1.0)


# --------------------------------------------------------------------- #
# DRPM
# --------------------------------------------------------------------- #
def test_drpm_tiny_gap_no_action(pm):
    assert not plan_drpm_gap(_gap(0.05), pm).acts


def test_drpm_long_gap_hits_bottom(pm):
    dec = plan_drpm_gap(_gap(60.0), pm)
    assert dec.mode is GapMode.RPM
    assert dec.target_rpm == 3000
    assert dec.up_at_s == pytest.approx(
        160.0 - pm.transition_time_s(3000, 15000)
    )


def test_drpm_medium_gap_partial_descent(pm):
    dec = plan_drpm_gap(_gap(0.45), pm)
    assert dec.acts
    assert 3000 < dec.target_rpm < 15000


def test_drpm_trailing_gap_no_return(pm):
    dec = plan_drpm_gap(_gap(60.0, trailing=True), pm)
    assert dec.acts and dec.up_at_s is None


def test_drpm_decision_beats_all_alternatives(pm):
    """The chosen level minimizes gap energy over every feasible level —
    checked against the independent closed-form cycle energy."""
    for dur in (0.3, 0.8, 1.7, 4.0, 12.0):
        dec = plan_drpm_gap(_gap(dur), pm)
        idle_cost = pm.idle_power_w(15000) * dur
        costs = {}
        for rpm in pm.levels[:-1]:
            t_round = 2 * pm.transition_time_s(15000, rpm)
            if t_round <= dur:
                costs[rpm] = drpm_cycle_energy_j(pm, dur, rpm)
        if dec.acts:
            best_alt = min(costs.values())
            chosen = costs[dec.target_rpm]
            assert chosen == pytest.approx(best_alt)
            assert chosen < idle_cost
            assert dec.est_saving_j == pytest.approx(idle_cost - chosen, rel=1e-6)
        else:
            assert not costs or min(costs.values()) >= idle_cost


def test_plan_gaps_dispatch(pm):
    gaps = [_gap(30.0), _gap(1.0)]
    tpm = plan_gaps(gaps, pm, "tpm")
    drpm = plan_gaps(gaps, pm, "drpm")
    assert tpm[0].acts and not tpm[1].acts
    assert drpm[0].acts and drpm[1].acts
    with pytest.raises(AnalysisError):
        plan_gaps(gaps, pm, "warp")


@settings(max_examples=80, deadline=None)
@given(st.floats(0.01, 100.0), st.booleans())
def test_drpm_planner_never_loses_energy(duration, trailing):
    """Property: a planned gap never costs more than idling through it, and
    the transitions always fit inside the gap."""
    pm = PowerModel(DiskParams(), DRPMParams())
    gap = _gap(duration, trailing=trailing)
    dec = plan_drpm_gap(gap, pm)
    if not dec.acts:
        return
    t_down = pm.transition_time_s(15000, dec.target_rpm)
    if trailing:
        assert t_down <= duration + 1e-9
        spent = pm.transition_energy_j(15000, dec.target_rpm) + pm.idle_power_w(
            dec.target_rpm
        ) * (duration - t_down)
    else:
        assert dec.up_at_s is not None
        assert gap.start_s + t_down <= dec.up_at_s + 1e-9
        assert dec.up_at_s + t_down <= gap.end_s + 1e-9
        spent = drpm_cycle_energy_j(pm, duration, dec.target_rpm)
    assert spent <= pm.idle_power_w(15000) * duration + 1e-9
    assert dec.est_saving_j >= -1e-9


@settings(max_examples=60, deadline=None)
@given(st.floats(0.01, 60.0), st.booleans())
def test_tpm_planner_never_loses_energy(duration, trailing):
    pm = PowerModel(DiskParams(), DRPMParams())
    dec = plan_tpm_gap(_gap(duration, trailing=trailing), pm)
    if not dec.acts:
        return
    if trailing:
        spent = pm.spin_down_energy_j + pm.standby_power_w * (
            duration - pm.spin_down_time_s
        )
    else:
        from repro.power.breakeven import tpm_cycle_energy_j

        spent = tpm_cycle_energy_j(pm, duration)
    assert spent < pm.idle_power_w(15000) * duration
