"""The compiler insertion pass: plans, placements, and their replay effect."""

import pytest

from repro.analysis.cycles import EstimationModel, compute_timing
from repro.controllers.compiler_directed import CompilerDirected
from repro.disksim.params import SubsystemParams
from repro.disksim.simulator import simulate
from repro.ir.nodes import PowerAction
from repro.power.insertion import plan_power_calls
from repro.trace.generator import TraceOptions, directives_at_positions, generate_trace
from repro.util.errors import AnalysisError
from repro.util.units import KB


@pytest.fixture()
def small_params():
    return SubsystemParams(num_disks=4)


def _measured(program, layout, params, options):
    """The measurement step the paper performs before planning: run the
    program once and observe per-nest wall time including I/O stalls."""
    import numpy as np

    from repro.analysis.cycles import measured_timing

    trace = generate_trace(program, layout, options)
    base = simulate(trace, params)
    nests = np.array([r.nest for r in trace.requests])
    return trace, base, measured_timing(
        program, nests, np.array(base.request_responses)
    )


def test_unknown_kind_rejected(phase_program, phase_layout, small_params):
    with pytest.raises(AnalysisError):
        plan_power_calls(phase_program, phase_layout, small_params, "warp")


def test_drpm_plan_finds_compute_gap(
    phase_program, phase_layout, small_params, small_trace_options
):
    """The 3 s compute phase between the two sweeps must be planned on
    every disk: a set_RPM descent plus a full-speed pre-activation."""
    _, _, meas = _measured(
        phase_program, phase_layout, small_params, small_trace_options
    )
    plan = plan_power_calls(
        phase_program,
        phase_layout,
        small_params,
        "drpm",
        estimation=EstimationModel(relative_error=0.0),
        measured=meas,
    )
    acted = plan.acted_gaps
    assert len(acted) >= 4  # at least the big gap on each of 4 disks
    downs = [
        p for p in plan.placements
        if p.call.action is PowerAction.SET_RPM and p.call.rpm != 15000
    ]
    ups = [
        p for p in plan.placements
        if p.call.action is PowerAction.SET_RPM and p.call.rpm == 15000
    ]
    assert downs and ups
    # Pre-activations precede the matching phase end (nest 2 start).
    for up in ups:
        assert up.nest <= 3  # at or before the second sweep nest


def test_tpm_plan_empty_for_short_gaps(
    phase_program, phase_layout, small_params, small_trace_options
):
    """3 s gaps are far below the ~15 s TPM break-even: CMTPM inserts
    nothing — the paper's 'CMTPM could not find any opportunity'."""
    _, _, meas = _measured(
        phase_program, phase_layout, small_params, small_trace_options
    )
    plan = plan_power_calls(
        phase_program, phase_layout, small_params, "tpm",
        estimation=EstimationModel(relative_error=0.0), measured=meas,
    )
    assert plan.num_calls == 0
    assert all(not d.acts for d in plan.decisions)


def test_placements_are_sorted_and_in_range(
    phase_program, phase_layout, small_params
):
    plan = plan_power_calls(phase_program, phase_layout, small_params, "drpm")
    keys = [(p.nest, p.iteration, p.fraction) for p in plan.placements]
    assert keys == sorted(keys)
    for p in plan.placements:
        assert 0 <= p.nest < len(phase_program.nests)
        trips = phase_program.nests[p.nest].trip_count
        assert 0 <= p.iteration <= trips
        assert 0.0 <= p.fraction <= 1.0


def test_cmdrpm_replay_saves_energy_without_penalty(
    phase_program, phase_layout, small_params, small_trace_options
):
    """End-to-end: the inserted calls reduce energy and leave execution
    time untouched (pre-activation hides every ramp)."""
    trace, base, meas = _measured(
        phase_program, phase_layout, small_params, small_trace_options
    )
    plan = plan_power_calls(
        phase_program, phase_layout, small_params, "drpm",
        estimation=EstimationModel(relative_error=0.0), measured=meas,
    )
    directives = directives_at_positions(
        plan.placements, compute_timing(phase_program)
    )
    cm = simulate(
        trace.with_directives(directives), small_params, CompilerDirected("drpm")
    )
    assert cm.total_energy_j < 0.9 * base.total_energy_j
    assert cm.execution_time_s <= base.execution_time_s * 1.002


def test_estimation_error_degrades_but_stays_safe(
    phase_program, phase_layout, small_params, small_trace_options
):
    """With a large timing error the plan still never slows execution by
    more than the odd mispredicted ramp."""
    trace, base, meas = _measured(
        phase_program, phase_layout, small_params, small_trace_options
    )
    plan = plan_power_calls(
        phase_program, phase_layout, small_params, "drpm",
        estimation=EstimationModel(relative_error=0.3), measured=meas,
    )
    directives = directives_at_positions(
        plan.placements, compute_timing(phase_program)
    )
    cm = simulate(
        trace.with_directives(directives), small_params, CompilerDirected("drpm")
    )
    assert cm.total_energy_j < base.total_energy_j
    assert cm.execution_time_s <= base.execution_time_s * 1.05


def test_measured_timeline_improves_gap_visibility(
    phase_program, phase_layout, small_params, small_trace_options
):
    """Feeding the measured (I/O-inclusive) timeline lets the compiler see
    at least as many exploitable gaps as the compute-only fallback."""
    trace, base, meas = _measured(
        phase_program, phase_layout, small_params, small_trace_options
    )
    est = EstimationModel(relative_error=0.0)
    without = plan_power_calls(
        phase_program, phase_layout, small_params, "drpm", estimation=est,
    )
    with_meas = plan_power_calls(
        phase_program, phase_layout, small_params, "drpm", estimation=est,
        measured=meas,
    )
    assert len(with_meas.acted_gaps) >= len(without.acted_gaps)
