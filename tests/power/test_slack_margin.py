"""Slack-aware pre-activation margin (``slack_margin_frac``).

The robustness knob reserves a fraction of each gap's residual slack as
extra wake-up lead: the default ``0.0`` must be bit-identical to the
fixed-margin planner, a positive fraction must only move ``up_at``
earlier (never later) and never violate feasibility, and the scalar and
batch DRPM planners must agree exactly at every fraction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.idle import IdleGap
from repro.disksim.params import DiskParams, DRPMParams, SubsystemParams
from repro.disksim.powermodel import PowerModel
from repro.layout.files import default_layout
from repro.power.insertion import plan_power_calls
from repro.power.planner import (
    GapMode,
    _plan_drpm_gaps,
    plan_drpm_gap,
    plan_gaps,
    plan_tpm_gap,
)
from repro.util.errors import AnalysisError
from repro.workloads.registry import build_workload


@pytest.fixture()
def pm():
    return PowerModel(DiskParams(), DRPMParams())


def _gap(duration, trailing=False, start=100.0):
    return IdleGap(disk=0, start_s=start, end_s=start + duration, trailing=trailing)


_GAPS = [
    _gap(5.0), _gap(12.0), _gap(30.0), _gap(120.0), _gap(600.0),
    _gap(30.0, trailing=True), _gap(600.0, trailing=True),
]


# --------------------------------------------------------------------- #
# Zero fraction is the identity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["tpm", "drpm"])
def test_zero_fraction_is_bit_identical(pm, kind):
    base = plan_gaps(_GAPS, pm, kind, safety_margin_s=0.05)
    explicit = plan_gaps(
        _GAPS, pm, kind, safety_margin_s=0.05, slack_margin_frac=0.0
    )
    assert base == explicit


# --------------------------------------------------------------------- #
# Positive fractions: earlier wake-ups, intact feasibility
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["tpm", "drpm"])
@pytest.mark.parametrize("frac", [0.1, 0.25, 0.5])
def test_positive_fraction_moves_up_at_earlier(pm, kind, frac):
    base = plan_gaps(_GAPS, pm, kind, safety_margin_s=0.05)
    widened = plan_gaps(
        _GAPS, pm, kind, safety_margin_s=0.05, slack_margin_frac=frac
    )
    for b, w in zip(base, widened):
        if w.up_at_s is not None and b.up_at_s is not None:
            assert w.up_at_s <= b.up_at_s
            # Feasibility: the wake-up still starts inside the gap.
            assert w.gap.start_s <= w.up_at_s <= w.gap.end_s
        if w.acts and b.acts:
            # Extra margin is pure insurance: it can only cost energy.
            assert w.est_saving_j <= b.est_saving_j + 1e-12


@pytest.mark.parametrize("kind", ["tpm", "drpm"])
def test_trailing_gaps_unaffected(pm, kind):
    trailing = [g for g in _GAPS if g.trailing]
    base = plan_gaps(trailing, pm, kind, safety_margin_s=0.05)
    widened = plan_gaps(
        trailing, pm, kind, safety_margin_s=0.05, slack_margin_frac=0.5
    )
    assert base == widened  # no return transition, no deadline, no margin


# --------------------------------------------------------------------- #
# Scalar ⇔ batch DRPM agreement at every fraction
# --------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(
    frac=st.floats(0.0, 0.99, allow_nan=False),
    margin=st.floats(0.0, 1.0, allow_nan=False),
    duration=st.floats(0.5, 2000.0, allow_nan=False),
    trailing=st.booleans(),
)
def test_scalar_batch_drpm_agree(frac, margin, duration, trailing):
    pm = PowerModel(DiskParams(), DRPMParams())
    gap = _gap(duration, trailing=trailing)
    scalar = plan_drpm_gap(gap, pm, margin, frac)
    (batch,) = _plan_drpm_gaps([gap], pm, margin, frac)
    assert scalar == batch


def test_tpm_margin_grows_with_fraction(pm):
    gap = _gap(600.0)
    decs = [
        plan_tpm_gap(gap, pm, 0.05, frac) for frac in (0.0, 0.2, 0.4, 0.8)
    ]
    ups = [d.up_at_s for d in decs]
    assert all(d.mode is GapMode.STANDBY for d in decs)
    assert ups == sorted(ups, reverse=True)  # strictly earlier each step
    assert len(set(ups)) == len(ups)


# --------------------------------------------------------------------- #
# Validation and end-to-end threading
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("bad", [-0.1, 1.0, 2.5])
def test_invalid_fraction_rejected(pm, bad):
    with pytest.raises(AnalysisError, match="slack margin"):
        plan_tpm_gap(_GAPS[0], pm, 0.05, bad)
    with pytest.raises(AnalysisError, match="slack margin"):
        plan_drpm_gap(_GAPS[0], pm, 0.05, bad)
    with pytest.raises(AnalysisError, match="slack margin"):
        plan_gaps(_GAPS, pm, "tpm", 0.05, bad)


def test_plan_power_calls_threads_fraction():
    wl = build_workload("swim")
    params = SubsystemParams()
    layout = default_layout(wl.program.arrays, num_disks=params.num_disks)
    base = plan_power_calls(wl.program, layout, params, "drpm", wl.estimation)
    same = plan_power_calls(
        wl.program, layout, params, "drpm", wl.estimation, slack_margin_frac=0.0
    )
    assert base.placements == same.placements
    assert base.decisions == same.decisions
    widened = plan_power_calls(
        wl.program, layout, params, "drpm", wl.estimation, slack_margin_frac=0.3
    )
    moved = 0
    base_by_gap = {(d.gap.disk, d.gap.start_s): d for d in base.decisions}
    for d in widened.decisions:
        b = base_by_gap.get((d.gap.disk, d.gap.start_s))
        if b is None or d.up_at_s is None or b.up_at_s is None:
            continue
        assert d.up_at_s <= b.up_at_s + 1e-12
        if d.up_at_s < b.up_at_s:
            moved += 1
    assert moved > 0
