"""Benchmark the experiment engine end to end; emit ``BENCH_engine.json``,
``BENCH_trace.json``, and ``BENCH_sim.json``.

Run from the repository root::

    PYTHONPATH=src python tools/bench_engine.py [--against REF] [-o PATH]

Measures wall-clock time for the engine's main entry points on the current
tree — the full default suite set (``ExperimentContext.all_suites()``) and
the stripe sweeps (figures 5-8) — serial/parallel and uncached/cold/warm
cache, plus a trace-generation microbench comparing the columnar pipeline
against the retained seed algorithm (``generate_trace_reference``) and a
simulator-only microbench timing ``simulate()`` per scheme under the
stepwise, segmented, and auto replay engines.  With
``--against REF`` it additionally checks out ``REF`` into a temporary git
worktree and measures the same serial-uncached workload there, so the
emitted JSON carries both baseline and optimized timings from the same
machine.  Older trees without the parallel/cache engine are detected and
measured in their only mode (serial, uncached).

``--smoke`` is the CI quick mode: trace microbench (with bit-identity
asserted between the two generator paths), the ingest+synth microbench
(text/binary/streamed column identity asserted), one serial-uncached
suite, and the per-cell replay parity gate, exiting non-zero when the
hot path regresses below its required speedup.

``--check-sim`` runs just the per-cell gate: every (workload, scheme)
replay is re-measured and the run fails if any cell's ``auto`` engine
drops below 1.0x vs stepwise (the invariant ``BENCH_sim.json`` records).
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return round(time.perf_counter() - t0, 3)


def _time_us(fn) -> float:
    """Microsecond-resolution timing for millisecond-scale replays."""
    t0 = time.perf_counter()
    fn()
    return round(time.perf_counter() - t0, 6)


def collect_timings() -> dict[str, float]:
    """Time the engine's entry points on whatever tree PYTHONPATH selects."""
    from repro.experiments import fig5_6, fig7_8
    from repro.experiments.runner import ExperimentContext

    try:
        ExperimentContext(cache=False)
        legacy = False
    except TypeError:  # pre-engine tree: serial and uncached is all it has
        legacy = True

    def fresh_ctx(**kw):
        return ExperimentContext() if legacy else ExperimentContext(**kw)

    def sweeps(ctx):
        fig5_6.run(ctx)
        fig7_8.run(ctx)

    timings = {
        "all_suites_serial_uncached": _time(
            lambda: fresh_ctx(cache=False).all_suites()
        ),
        "sweeps_serial_uncached": _time(lambda: sweeps(fresh_ctx(cache=False))),
    }
    if legacy:
        return timings

    from repro.cache import ResultCache

    timings["all_suites_parallel_uncached"] = _time(
        lambda: fresh_ctx(jobs=0, cache=False).all_suites()
    )
    with tempfile.TemporaryDirectory(prefix=".bench-cache-", dir=REPO) as td:
        timings["all_suites_cold_cache"] = _time(
            lambda: fresh_ctx(cache=ResultCache(td)).all_suites()
        )
        timings["all_suites_warm_cache"] = _time(
            lambda: fresh_ctx(cache=ResultCache(td)).all_suites()
        )
        timings["sweeps_cold_cache"] = _time(
            lambda: sweeps(fresh_ctx(cache=ResultCache(td)))
        )
        timings["sweeps_warm_cache"] = _time(
            lambda: sweeps(fresh_ctx(cache=ResultCache(td)))
        )
    return timings


def collect_trace_timings(repeats: int = 3) -> dict:
    """Time trace generation per bundled workload: seed algorithm vs
    columnar pipeline.

    The seed path (per-line cache walk, one ``IORequest`` object per chunk)
    is retained in-tree as ``generate_trace_reference``, so both sides run
    on the current tree with identical analysis inputs — the comparison
    isolates exactly the generator rewrite.  Bit-identity of the two
    streams is asserted as a side effect.
    """
    from repro.layout.files import default_layout
    from repro.trace.generator import generate_trace, generate_trace_reference
    from repro.workloads import all_workloads

    per_workload: dict[str, dict] = {}
    seed_total = 0.0
    opt_total = 0.0
    for wl in all_workloads():
        layout = default_layout(wl.program.arrays, num_disks=4)
        inputs = (wl.program, layout, wl.trace_options)
        ref = generate_trace_reference(*inputs)
        opt = generate_trace(*inputs)
        if opt.requests != ref.requests:  # pragma: no cover - equivalence bug
            raise SystemExit(f"trace mismatch on {wl.name}: bench aborted")
        seed_s = min(_time(lambda: generate_trace_reference(*inputs))
                     for _ in range(repeats))
        opt_s = min(_time(lambda: generate_trace(*inputs))
                    for _ in range(repeats))
        seed_total += seed_s
        opt_total += opt_s
        per_workload[wl.name] = {
            "num_requests": ref.num_requests,
            "seed_s": seed_s,
            "optimized_s": opt_s,
            "speedup": round(seed_s / opt_s, 2) if opt_s else None,
        }
    return {
        "per_workload": per_workload,
        "totals_s": {"seed": round(seed_total, 3), "optimized": round(opt_total, 3)},
        "speedup": round(seed_total / opt_total, 2) if opt_total else None,
    }


def collect_ingest_timings(repeats: int = 3, num_requests: int = 50_000) -> dict:
    """Time recorded-trace ingestion and the synthetic generator.

    One record set is serialized in both on-disk formats and each is timed
    through parse → normalize, plus the chunked streaming reader and a
    same-size ``synth_stream`` pass.  Bit-identity — text vs binary columns,
    and streamed chunks concatenating to the whole-file ingest — is asserted
    as a side effect; the smoke mode runs this cell as its ingest gate.
    """
    import numpy as np

    from repro.trace.ingest import (
        ingest_trace,
        stream_ingest,
        write_binary_records,
        write_text_records,
    )
    from repro.trace.synth import SynthConfig, synth_stream

    rng = np.random.default_rng(12345)
    arrivals = np.cumsum(rng.exponential(1.0 / 2000.0, num_requests))
    devices = rng.integers(0, 8, num_requests)
    lbas = rng.integers(0, 1 << 20, num_requests) * 8
    sizes = rng.choice([4096, 8192, 65536], num_requests)
    writes = rng.random(num_requests) < 0.3
    records = [
        (float(a), int(d), int(l), int(s), bool(w))
        for a, d, l, s, w in zip(arrivals, devices, lbas, sizes, writes)
    ]
    fields = (
        "nominal_time_s", "array_id", "offset", "nbytes", "is_write",
        "nest", "iteration",
    )
    config = SynthConfig(num_requests=num_requests, num_disks=8, model="onoff")

    def consume_synth():
        for _ in synth_stream(config).iter_chunks():
            pass

    with tempfile.TemporaryDirectory(prefix=".bench-ingest-") as td:
        tp = Path(td) / "bench.trace"
        bp = Path(td) / "bench.btrace"
        write_text_records(tp, records)
        write_binary_records(bp, records)
        ct = ingest_trace(tp, num_disks=8).columns
        cb = ingest_trace(bp, num_disks=8).columns
        for f in fields:
            if not np.array_equal(getattr(ct, f), getattr(cb, f)):
                raise SystemExit(
                    f"ingest text/binary identity broken on {f}: bench aborted"
                )

        def consume_stream():
            for _ in stream_ingest(
                bp, num_disks=8, chunk_requests=8192
            ).iter_chunks():
                pass

        streamed = stream_ingest(bp, num_disks=8, chunk_requests=8192)
        for f in fields:
            got = np.concatenate(
                [getattr(c, f) for c in streamed.iter_chunks()]
            )
            if not np.array_equal(got, getattr(cb, f)):
                raise SystemExit(
                    f"streamed ingest identity broken on {f}: bench aborted"
                )
        text_s = min(
            _time_us(lambda: ingest_trace(tp, num_disks=8))
            for _ in range(repeats)
        )
        binary_s = min(
            _time_us(lambda: ingest_trace(bp, num_disks=8))
            for _ in range(repeats)
        )
        stream_s = min(_time_us(consume_stream) for _ in range(repeats))
    synth_s = min(_time_us(consume_synth) for _ in range(repeats))
    return {
        "num_requests": num_requests,
        "text_ingest_s": text_s,
        "binary_ingest_s": binary_s,
        "binary_stream_s": stream_s,
        "synth_onoff_s": synth_s,
        "binary_ingest_per_s": (
            round(num_requests / binary_s) if binary_s else None
        ),
        "synth_per_s": round(num_requests / synth_s) if synth_s else None,
        "identity": "text == binary == streamed-chunk columns (asserted)",
    }


def _scheme_replay_setups(workload):
    """Per-scheme (trace, controller, collect_busy) triples for one workload.

    Trace generation, oracle derivation, and compiler planning all happen
    here, *outside* the timed region — the microbench isolates exactly the
    ``simulate()`` replay.
    """
    import numpy as np

    from repro.analysis.access import analyze_program
    from repro.analysis.cycles import compute_timing, measured_timing
    from repro.controllers.base import Controller
    from repro.controllers.compiler_directed import CompilerDirected
    from repro.controllers.drpm import ReactiveDRPM
    from repro.controllers.oracle import OracleDRPM, OracleTPM
    from repro.controllers.tpm import ReactiveTPM
    from repro.disksim.params import SubsystemParams
    from repro.disksim.replay import ReplayPlan
    from repro.disksim.simulator import simulate
    from repro.layout.files import default_layout
    from repro.power.insertion import plan_power_calls
    from repro.trace.generator import directives_at_positions, generate_trace

    params = SubsystemParams()
    program = workload.program
    layout = default_layout(program.arrays, num_disks=params.num_disks)
    accesses = analyze_program(program)
    timing = compute_timing(program)
    trace = generate_trace(
        program, layout, workload.trace_options, accesses=accesses, timing=timing
    )
    plan = ReplayPlan.for_trace(trace)
    base = simulate(
        trace, params, Controller(), collect_busy_intervals=True, plan=plan,
        engine="stepwise",
    )
    measured = measured_timing(
        program, trace.request_nests, np.asarray(base.request_responses)
    )
    setups = {
        "Base": (trace, Controller(), True),
        "TPM": (trace, ReactiveTPM(params.effective_tpm_threshold_s), False),
        "ITPM": (trace, OracleTPM(base, params), False),
        "DRPM": (trace, ReactiveDRPM(params.drpm), False),
        "IDRPM": (trace, OracleDRPM(base, params), False),
    }
    for scheme, kind in (("CMTPM", "tpm"), ("CMDRPM", "drpm")):
        cplan = plan_power_calls(
            program, layout, params, kind,
            estimation=workload.estimation, accesses=accesses, measured=measured,
        )
        directives = directives_at_positions(cplan.placements, timing)
        setups[scheme] = (
            trace.with_directives(directives), CompilerDirected(kind), False
        )
    return params, plan, setups


SIM_ENGINES = ("stepwise", "segmented", "auto")


def collect_sim_timings(repeats: int = 3, workloads=None) -> dict:
    """Time ``simulate()`` alone, per bundled workload and scheme, under
    each replay engine.

    Every scheme — including reactive DRPM (window heuristic lifted into
    the kernel) and the directive-dense DRPM family (directives applied
    as mirror boundary edits) — replays on the segmented engine under
    ``auto``; the per-scheme rows document where the batch kernels pay
    off.  Engines are timed round-robin *within* each repeat rather than
    all repeats of one engine back to back, so slow drift in machine
    speed lands evenly across engines before the per-engine minimum is
    taken.
    """
    from repro.disksim.simulator import (
        replay_coverage,
        reset_replay_coverage,
        simulate,
    )
    from repro.workloads import all_workloads

    per_workload: dict[str, dict] = {}
    totals = {eng: 0.0 for eng in SIM_ENGINES}
    reset_replay_coverage()
    for wl in workloads if workloads is not None else all_workloads():
        params, plan, setups = _scheme_replay_setups(wl)
        rows: dict[str, dict] = {}
        for scheme, (trace, ctrl, collect) in setups.items():
            best = {eng: float("inf") for eng in SIM_ENGINES}
            for _ in range(repeats):
                for eng in SIM_ENGINES:
                    took = _time_us(
                        lambda: simulate(
                            trace, params, ctrl,
                            collect_busy_intervals=collect, plan=plan, engine=eng,
                        )
                    )
                    if took < best[eng]:
                        best[eng] = took
            row: dict[str, float | None] = {}
            for eng in SIM_ENGINES:
                row[f"{eng}_s"] = best[eng]
                totals[eng] += best[eng]
            seg = row["segmented_s"]
            row["speedup_segmented"] = (
                round(row["stepwise_s"] / seg, 2) if seg else None
            )
            rows[scheme] = row
        per_workload[wl.name] = rows
    totals_r = {eng: round(t, 3) for eng, t in totals.items()}
    return {
        "per_workload": per_workload,
        "totals_s": totals_r,
        "speedup_auto": (
            round(totals["stepwise"] / totals["auto"], 2)
            if totals["auto"]
            else None
        ),
        "coverage": replay_coverage(),
    }


def write_sim_report(path: str | Path, repeats: int = 3) -> dict:
    sim = collect_sim_timings(repeats=repeats)
    payload = {
        "schema": 1,
        "bench": "simulator-only replay wall clock per scheme (seconds)",
        "command": "PYTHONPATH=src python tools/bench_engine.py",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus_available": _cpus(),
        },
        "engines": list(SIM_ENGINES),
        "note": (
            "simulate() only — trace generation, oracle derivation, and "
            "compiler planning run outside the timed region; every scheme "
            "replays segmented under auto (directives are mirror boundary "
            "edits, the reactive-DRPM window fold and TPM spin-down checks "
            "run in-kernel), with stepwise reserved for reactive "
            "per-completion controller hooks and timeline recording"
        ),
        "results": sim,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return sim


def write_trace_report(path: str | Path, repeats: int = 3) -> dict:
    trace = collect_trace_timings(repeats=repeats)
    ingest = collect_ingest_timings(repeats=repeats)
    payload = {
        "schema": 1,
        "bench": "serial uncached trace generation wall clock (seconds)",
        "command": "PYTHONPATH=src python tools/bench_engine.py",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus_available": _cpus(),
        },
        "baseline": {
            "path": "repro.trace.generator.generate_trace_reference",
            "note": "seed per-line algorithm, retained as the reference",
        },
        "optimized": {"path": "repro.trace.generator.generate_trace"},
        "results": trace,
        "ingest": ingest,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return {"trace": trace, "ingest": ingest}


#: Allowed slowdown of the obs-disabled engine vs the committed baseline.
OBS_OVERHEAD_TOLERANCE = 0.02

#: Allowed slowdown of a zero-rate fault plan vs no fault plan at all.
FAULT_OVERHEAD_TOLERANCE = 0.02


def collect_fault_overhead(repeats: int = 15, inner: int = 3) -> dict:
    """A/B the replay hot path: no fault plan vs an all-zero-rate plan.

    A ``FaultConfig`` whose every rate is zero still builds a
    :class:`~repro.faults.FaultPlan` and threads the flag checks through
    both engines, so this measures exactly the tax every faulted replay
    pays on its clean requests.  Each sample times ``inner`` back-to-back
    replays (the single replay is milliseconds).  Samples are taken in
    tight clean/zero *pairs* and the reported overhead is the median of
    the per-pair ratios: the two halves of a pair are adjacent in time,
    so machine-wide drift (cpufreq, a noisy container neighbour) hits
    both sides equally and cancels in the ratio — min-of-N on absolute
    times does not converge under that kind of drift.  The smoke mode
    gates the result at :data:`FAULT_OVERHEAD_TOLERANCE`.
    """
    from repro.disksim.params import SubsystemParams
    from repro.disksim.replay import ReplayPlan
    from repro.disksim.simulator import simulate
    from repro.faults import FaultConfig, FaultRates
    from repro.layout.files import default_layout
    from repro.trace.generator import generate_trace
    from repro.workloads import all_workloads

    wl = next(w for w in all_workloads() if w.name == "swim")
    params = SubsystemParams()
    layout = default_layout(wl.program.arrays, num_disks=params.num_disks)
    trace = generate_trace(wl.program, layout, wl.trace_options)
    plan = ReplayPlan.for_trace(trace)
    null = FaultConfig(rates=FaultRates())

    def one(faults):
        def run():
            for _ in range(inner):
                simulate(trace, params, plan=plan, engine=eng, faults=faults)

        return _time_us(run)

    repeats += repeats % 2  # even split between the two pair orderings
    rows: dict[str, dict] = {}
    for eng in ("stepwise", "segmented"):
        one(None), one(null)  # warm both paths before sampling
        cz, zc, clean, zero = [], [], [], []
        for i in range(repeats):
            # Alternate which side of the pair runs first: any systematic
            # second-runner penalty inflates the clean-first ratios and
            # deflates the zero-first ones symmetrically, so the geometric
            # mean of the two per-ordering medians cancels it.
            if i % 2:
                z, c = one(null), one(None)
                zc.append(z / c)
            else:
                c, z = one(None), one(null)
                cz.append(z / c)
            clean.append(c)
            zero.append(z)
        ratio = (statistics.median(cz) * statistics.median(zc)) ** 0.5
        rows[eng] = {
            "clean_s": min(clean),
            "zero_rate_s": min(zero),
            "overhead": round(ratio - 1.0, 4),
        }
    return rows


def check_fault_overhead(
    repeats: int = 24, inner: int = 3, attempts: int = 4
) -> tuple[bool, str]:
    """Gate the zero-rate fault path's cost on the replay hot loop.

    The measured quantity is a couple of percent of a few milliseconds,
    so a single noise burst (CI container neighbours) can push one
    attempt over the limit.  A genuine regression is persistent where a
    burst is not: the gate passes on the first attempt under the
    tolerance and fails only when every attempt is over it.
    """
    for attempt in range(1, attempts + 1):
        rows = collect_fault_overhead(repeats=repeats, inner=inner)
        worst = max(r["overhead"] for r in rows.values())
        if worst <= FAULT_OVERHEAD_TOLERANCE:
            break
    parts = ", ".join(
        f"{eng} {r['clean_s']*1e3:.1f}ms->{r['zero_rate_s']*1e3:.1f}ms "
        f"({r['overhead']:+.1%})"
        for eng, r in rows.items()
    )
    msg = (
        f"zero-rate fault overhead (swim replay x{inner}, "
        f"attempt {attempt}/{attempts}): {parts} "
        f"(limit {FAULT_OVERHEAD_TOLERANCE:.0%})"
    )
    return worst <= FAULT_OVERHEAD_TOLERANCE, msg


def check_sim_cells(
    baseline_path: str | Path, repeats: int = 3, attempts: int = 3
) -> tuple[bool, list[str]]:
    """Per-cell replay-speedup regression gate (``--check-sim``).

    Re-measures the simulator microbench on this machine and fails when
    any (workload, scheme) cell's ``auto`` engine falls below parity
    (speedup < 1.0x) against the stepwise reference — the invariant the
    committed ``BENCH_sim.json`` documents.  The committed file supplies
    the expected cell set, so a scheme silently dropping out of the bench
    also fails; absolute committed timings are *not* compared (they are
    only meaningful on the machine that produced them).

    Individual cells are milliseconds, so one noisy container neighbour
    can sink a single measurement; failing cells are re-measured up to
    ``attempts`` times (keeping each cell's best ratio) before the gate
    gives up, the same persistent-vs-burst reasoning as
    :func:`check_fault_overhead`.
    """
    from repro.workloads import all_workloads

    committed_cells = None
    base = Path(baseline_path)
    if base.exists():
        try:
            data = json.loads(base.read_text())
            committed_cells = {
                (wl, sc)
                for wl, rows in data["results"]["per_workload"].items()
                for sc in rows
            }
        except (KeyError, ValueError):
            committed_cells = None

    sim = collect_sim_timings(repeats=repeats)
    cells = {
        (wl, sc): row["stepwise_s"] / row["auto_s"]
        for wl, rows in sim["per_workload"].items()
        for sc, row in rows.items()
    }
    msgs = []
    ok = True
    if committed_cells is not None and committed_cells != set(cells):
        missing = sorted(committed_cells - set(cells))
        extra = sorted(set(cells) - committed_cells)
        msgs.append(
            f"cell set drifted from {base.name}: missing {missing}, "
            f"new {extra}"
        )
        ok = False
    elif committed_cells is None:
        msgs.append(f"no committed {base.name}; parity gate only")

    wl_by_name = {w.name: w for w in all_workloads()}
    failing = sorted(k for k, v in cells.items() if v < 1.0)
    for _ in range(attempts - 1):
        if not failing:
            break
        for wl_name in sorted({wl for wl, _ in failing}):
            again = collect_sim_timings(
                repeats=repeats, workloads=[wl_by_name[wl_name]]
            )
            for sc, row in again["per_workload"][wl_name].items():
                sp = row["stepwise_s"] / row["auto_s"]
                if sp > cells[(wl_name, sc)]:
                    cells[(wl_name, sc)] = sp
        failing = sorted(k for k, v in cells.items() if v < 1.0)

    worst = min(cells, key=cells.get)
    msgs.append(
        f"{len(cells)} cells, worst auto speedup "
        f"{cells[worst]:.2f}x ({worst[0]}/{worst[1]})"
    )
    for wl, sc in failing:
        msgs.append(f"CELL REGRESSION: {wl}/{sc} auto {cells[(wl, sc)]:.2f}x "
                    f"< 1.0x vs stepwise")
        ok = False
    return ok, msgs


def check_obs_overhead(repeats: int = 3) -> tuple[bool, str]:
    """Gate the disabled observability layer's cost on the full suite set.

    ``repro.obs`` must be free when off: every instrumented call site
    reduces to an attribute load plus a no-op call, and the per-RPM serve
    accounting is gated on a ``None`` check.  This measures
    ``all_suites_serial_uncached`` (min of ``repeats``, obs disabled — the
    default) and compares it against the committed ``BENCH_engine.json``
    baseline with the :data:`OBS_OVERHEAD_TOLERANCE` (2 %) tolerance.
    Returns ``(ok, message)``; missing/foreign baselines skip rather than
    fail (the committed numbers are only meaningful on the machine that
    produced them).
    """
    from repro import obs
    from repro.experiments.runner import ExperimentContext

    baseline_path = REPO / "BENCH_engine.json"
    if not baseline_path.exists():
        return True, "obs overhead: skipped (no BENCH_engine.json baseline)"
    try:
        committed = json.loads(baseline_path.read_text())
        baseline_s = committed["optimized"]["timings_s"][
            "all_suites_serial_uncached"
        ]
    except (KeyError, ValueError):
        return True, "obs overhead: skipped (baseline lacks the suite timing)"
    if obs.enabled():  # the gate measures the *disabled* path
        obs.disable()
    now_s = min(
        _time(lambda: ExperimentContext(cache=False).all_suites())
        for _ in range(repeats)
    )
    limit_s = baseline_s * (1.0 + OBS_OVERHEAD_TOLERANCE)
    msg = (
        f"obs-disabled all_suites_serial_uncached: {now_s:.3f}s "
        f"(baseline {baseline_s:.3f}s, limit {limit_s:.3f}s)"
    )
    return now_s <= limit_s, msg


def run_smoke() -> int:
    """Quick hot-path regression check for CI.

    Runs the trace microbench once per workload (asserting bit-identity of
    the two generator paths), the simulator microbench on one workload,
    plus one serial-uncached suite; fails when the columnar pipeline has
    lost its edge over the seed algorithm, the segmented replay engine
    has lost its edge on the directive-free Base replay, or the disabled
    observability layer costs more than the committed-baseline tolerance
    on the full suite set.
    """
    from repro.workloads import all_workloads

    trace = collect_trace_timings(repeats=1)
    for name, row in trace["per_workload"].items():
        print(f"  trace {name}: seed {row['seed_s']:.3f}s -> "
              f"optimized {row['optimized_s']:.3f}s ({row['speedup']}x)")
    # SystemExits when either ingest identity assertion fails.
    ingest = collect_ingest_timings(repeats=1, num_requests=20_000)
    print(f"  ingest+synth ({ingest['num_requests']} requests): "
          f"text {ingest['text_ingest_s']:.3f}s, "
          f"binary {ingest['binary_ingest_s']:.3f}s, "
          f"stream {ingest['binary_stream_s']:.3f}s, "
          f"synth {ingest['synth_onoff_s']:.3f}s — identities ok")
    wupwise = [wl for wl in all_workloads() if wl.name == "wupwise"]
    sim = collect_sim_timings(repeats=3, workloads=wupwise)
    base_row = sim["per_workload"]["wupwise"]["Base"]
    print(f"  sim wupwise Base: stepwise {base_row['stepwise_s']*1e3:.1f}ms -> "
          f"segmented {base_row['segmented_s']*1e3:.1f}ms "
          f"({base_row['speedup_segmented']}x)")
    suite_s = _time(lambda: _smoke_suite())
    print(f"  suite swim (serial, uncached): {suite_s:.3f}s")
    speedup = trace["speedup"] or 0.0
    print(f"  trace generation speedup: {speedup}x")
    failed = False
    if speedup < 2.0:
        print("SMOKE FAIL: columnar trace pipeline below 2x vs seed path")
        failed = True
    if (base_row["speedup_segmented"] or 0.0) < 1.2:
        print("SMOKE FAIL: segmented Base replay below 1.2x vs stepwise")
        failed = True
    else:
        print(f"  segmented Base replay speedup: "
              f"{base_row['speedup_segmented']}x")
    obs_ok, obs_msg = check_obs_overhead()
    print(f"  {obs_msg}")
    if not obs_ok:
        print("SMOKE FAIL: obs-disabled engine exceeds baseline tolerance")
        failed = True
    fault_ok, fault_msg = check_fault_overhead()
    print(f"  {fault_msg}")
    if not fault_ok:
        print("SMOKE FAIL: zero-rate fault plan exceeds replay overhead limit")
        failed = True
    sim_ok, sim_msgs = check_sim_cells(REPO / "BENCH_sim.json", repeats=2)
    for m in sim_msgs:
        print(f"  {m}")
    if not sim_ok:
        print("SMOKE FAIL: per-cell auto replay speedup below parity")
        failed = True
    if failed:
        return 1
    print("smoke ok")
    return 0


def _smoke_suite():
    from repro.experiments.runner import ExperimentContext

    ExperimentContext(cache=False).suite("swim")


def measure_ref(ref: str) -> dict[str, float]:
    """Measure ``ref`` in a temporary worktree (same machine, same tool)."""
    wt = REPO / ".bench-worktree"
    subprocess.run(
        ["git", "worktree", "add", "--detach", str(wt), ref],
        cwd=REPO,
        check=True,
        capture_output=True,
    )
    try:
        env = dict(os.environ, PYTHONPATH=str(wt / "src"))
        env.pop("REPRO_JOBS", None)
        env.pop("REPRO_CACHE", None)
        out = subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_engine.py"), "--timings-only"],
            env=env,
            cwd=wt,
            check=True,
            capture_output=True,
            text=True,
        )
        return json.loads(out.stdout)
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(wt)],
            cwd=REPO,
            check=False,
            capture_output=True,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--against",
        metavar="REF",
        default=None,
        help="git ref to benchmark as the baseline (in a temp worktree)",
    )
    parser.add_argument(
        "--timings-only",
        action="store_true",
        help="print the current tree's timings as JSON and exit",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: trace microbench + one suite, fail on regression",
    )
    parser.add_argument(
        "--check-sim",
        action="store_true",
        help="per-cell regression mode: re-measure every (workload, scheme) "
        "replay and fail if any cell's auto speedup drops below 1.0x "
        "vs stepwise (cell set from the committed BENCH_sim.json)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO / "BENCH_engine.json"),
        help="where to write the report (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--trace-output",
        default=str(REPO / "BENCH_trace.json"),
        help="where to write the trace microbench (default: BENCH_trace.json)",
    )
    parser.add_argument(
        "--sim-output",
        default=str(REPO / "BENCH_sim.json"),
        help="where to write the simulator microbench (default: BENCH_sim.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    if args.check_sim:
        ok, msgs = check_sim_cells(args.sim_output)
        for m in msgs:
            print(m)
        print("check-sim ok" if ok else "check-sim FAILED")
        return 0 if ok else 1

    if args.timings_only:
        print(json.dumps(collect_timings()))
        return 0

    report = write_trace_report(args.trace_output)
    trace, ingest = report["trace"], report["ingest"]
    print(f"wrote {args.trace_output}")
    print(f"  trace generation (serial, uncached): "
          f"seed {trace['totals_s']['seed']:.3f}s -> "
          f"optimized {trace['totals_s']['optimized']:.3f}s "
          f"({trace['speedup']}x)")
    print(f"  ingest+synth ({ingest['num_requests']} requests): "
          f"text {ingest['text_ingest_s']:.3f}s, "
          f"binary {ingest['binary_ingest_s']:.3f}s "
          f"({ingest['binary_ingest_per_s']}/s), "
          f"synth {ingest['synth_onoff_s']:.3f}s "
          f"({ingest['synth_per_s']}/s)")

    sim = write_sim_report(args.sim_output)
    print(f"wrote {args.sim_output}")
    print(f"  simulator replays (all workloads x schemes): "
          f"stepwise {sim['totals_s']['stepwise']:.3f}s -> "
          f"auto {sim['totals_s']['auto']:.3f}s ({sim['speedup_auto']}x)")

    fault = collect_fault_overhead(repeats=24)
    worst_fault = max(r["overhead"] for r in fault.values())
    print(f"  zero-rate fault-path overhead (worst engine): {worst_fault:+.1%}")

    current = collect_timings()
    baseline = measure_ref(args.against) if args.against else None

    payload = {
        "schema": 1,
        "bench": "experiment engine end-to-end wall clock (seconds)",
        "command": "PYTHONPATH=src python tools/bench_engine.py --against <ref>",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus_available": _cpus(),
        },
        "optimized": {"timings_s": current},
        "fault_overhead": {
            "note": (
                "zero-rate FaultPlan vs no plan on the swim replay "
                "(x3 per sample, median of 24 order-balanced pairs); "
                f"gate: {FAULT_OVERHEAD_TOLERANCE:.0%}"
            ),
            "per_engine": fault,
        },
    }
    if baseline is not None:
        payload["baseline"] = {"ref": args.against, "timings_s": baseline}
        ref_suites = baseline.get("all_suites_serial_uncached")
        ref_sweeps = baseline.get("sweeps_serial_uncached")
        speedups = {}
        for mode, t in current.items():
            ref = ref_suites if mode.startswith("all_suites") else ref_sweeps
            if ref and t:
                speedups[mode] = round(ref / t, 2)
        payload["speedup_vs_baseline_serial"] = speedups

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    for mode, t in current.items():
        print(f"  {mode}: {t:.3f}s")

    # Bench trajectory: every regeneration appends a machine-stamped
    # snapshot to BENCH_history.jsonl and reports >10% regressions.
    import bench_history

    for report_path in (args.trace_output, args.sim_output, args.output):
        for flag in bench_history.record(report_path):
            print(f"  REGRESSION {Path(report_path).name}: {flag}")
    return 0


def _cpus() -> int:
    try:
        from repro.experiments.parallel import available_cpus

        return available_cpus()
    except ImportError:  # pragma: no cover
        return os.cpu_count() or 1


if __name__ == "__main__":
    sys.exit(main())
