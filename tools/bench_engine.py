"""Benchmark the experiment engine end to end; emit ``BENCH_engine.json``
and ``BENCH_trace.json``.

Run from the repository root::

    PYTHONPATH=src python tools/bench_engine.py [--against REF] [-o PATH]

Measures wall-clock time for the engine's main entry points on the current
tree — the full default suite set (``ExperimentContext.all_suites()``) and
the stripe sweeps (figures 5-8) — serial/parallel and uncached/cold/warm
cache, plus a trace-generation microbench comparing the columnar pipeline
against the retained seed algorithm (``generate_trace_reference``).  With
``--against REF`` it additionally checks out ``REF`` into a temporary git
worktree and measures the same serial-uncached workload there, so the
emitted JSON carries both baseline and optimized timings from the same
machine.  Older trees without the parallel/cache engine are detected and
measured in their only mode (serial, uncached).

``--smoke`` is the CI quick mode: trace microbench (with bit-identity
asserted between the two generator paths) plus one serial-uncached suite,
exiting non-zero when the hot path regresses below its required speedup.
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return round(time.perf_counter() - t0, 3)


def collect_timings() -> dict[str, float]:
    """Time the engine's entry points on whatever tree PYTHONPATH selects."""
    from repro.experiments import fig5_6, fig7_8
    from repro.experiments.runner import ExperimentContext

    try:
        ExperimentContext(cache=False)
        legacy = False
    except TypeError:  # pre-engine tree: serial and uncached is all it has
        legacy = True

    def fresh_ctx(**kw):
        return ExperimentContext() if legacy else ExperimentContext(**kw)

    def sweeps(ctx):
        fig5_6.run(ctx)
        fig7_8.run(ctx)

    timings = {
        "all_suites_serial_uncached": _time(
            lambda: fresh_ctx(cache=False).all_suites()
        ),
        "sweeps_serial_uncached": _time(lambda: sweeps(fresh_ctx(cache=False))),
    }
    if legacy:
        return timings

    from repro.cache import ResultCache

    timings["all_suites_parallel_uncached"] = _time(
        lambda: fresh_ctx(jobs=0, cache=False).all_suites()
    )
    with tempfile.TemporaryDirectory(prefix=".bench-cache-", dir=REPO) as td:
        timings["all_suites_cold_cache"] = _time(
            lambda: fresh_ctx(cache=ResultCache(td)).all_suites()
        )
        timings["all_suites_warm_cache"] = _time(
            lambda: fresh_ctx(cache=ResultCache(td)).all_suites()
        )
        timings["sweeps_cold_cache"] = _time(
            lambda: sweeps(fresh_ctx(cache=ResultCache(td)))
        )
        timings["sweeps_warm_cache"] = _time(
            lambda: sweeps(fresh_ctx(cache=ResultCache(td)))
        )
    return timings


def collect_trace_timings(repeats: int = 3) -> dict:
    """Time trace generation per bundled workload: seed algorithm vs
    columnar pipeline.

    The seed path (per-line cache walk, one ``IORequest`` object per chunk)
    is retained in-tree as ``generate_trace_reference``, so both sides run
    on the current tree with identical analysis inputs — the comparison
    isolates exactly the generator rewrite.  Bit-identity of the two
    streams is asserted as a side effect.
    """
    from repro.layout.files import default_layout
    from repro.trace.generator import generate_trace, generate_trace_reference
    from repro.workloads import all_workloads

    per_workload: dict[str, dict] = {}
    seed_total = 0.0
    opt_total = 0.0
    for wl in all_workloads():
        layout = default_layout(wl.program.arrays, num_disks=4)
        inputs = (wl.program, layout, wl.trace_options)
        ref = generate_trace_reference(*inputs)
        opt = generate_trace(*inputs)
        if opt.requests != ref.requests:  # pragma: no cover - equivalence bug
            raise SystemExit(f"trace mismatch on {wl.name}: bench aborted")
        seed_s = min(_time(lambda: generate_trace_reference(*inputs))
                     for _ in range(repeats))
        opt_s = min(_time(lambda: generate_trace(*inputs))
                    for _ in range(repeats))
        seed_total += seed_s
        opt_total += opt_s
        per_workload[wl.name] = {
            "num_requests": ref.num_requests,
            "seed_s": seed_s,
            "optimized_s": opt_s,
            "speedup": round(seed_s / opt_s, 2) if opt_s else None,
        }
    return {
        "per_workload": per_workload,
        "totals_s": {"seed": round(seed_total, 3), "optimized": round(opt_total, 3)},
        "speedup": round(seed_total / opt_total, 2) if opt_total else None,
    }


def write_trace_report(path: str | Path, repeats: int = 3) -> dict:
    trace = collect_trace_timings(repeats=repeats)
    payload = {
        "schema": 1,
        "bench": "serial uncached trace generation wall clock (seconds)",
        "command": "PYTHONPATH=src python tools/bench_engine.py",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus_available": _cpus(),
        },
        "baseline": {
            "path": "repro.trace.generator.generate_trace_reference",
            "note": "seed per-line algorithm, retained as the reference",
        },
        "optimized": {"path": "repro.trace.generator.generate_trace"},
        "results": trace,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return trace


def run_smoke() -> int:
    """Quick hot-path regression check for CI.

    Runs the trace microbench once per workload (asserting bit-identity of
    the two generator paths) plus one serial-uncached suite, and fails when
    the columnar pipeline has lost its edge over the seed algorithm.
    """
    trace = collect_trace_timings(repeats=1)
    for name, row in trace["per_workload"].items():
        print(f"  trace {name}: seed {row['seed_s']:.3f}s -> "
              f"optimized {row['optimized_s']:.3f}s ({row['speedup']}x)")
    suite_s = _time(lambda: _smoke_suite())
    print(f"  suite swim (serial, uncached): {suite_s:.3f}s")
    speedup = trace["speedup"] or 0.0
    print(f"  trace generation speedup: {speedup}x")
    if speedup < 2.0:
        print("SMOKE FAIL: columnar trace pipeline below 2x vs seed path")
        return 1
    print("smoke ok")
    return 0


def _smoke_suite():
    from repro.experiments.runner import ExperimentContext

    ExperimentContext(cache=False).suite("swim")


def measure_ref(ref: str) -> dict[str, float]:
    """Measure ``ref`` in a temporary worktree (same machine, same tool)."""
    wt = REPO / ".bench-worktree"
    subprocess.run(
        ["git", "worktree", "add", "--detach", str(wt), ref],
        cwd=REPO,
        check=True,
        capture_output=True,
    )
    try:
        env = dict(os.environ, PYTHONPATH=str(wt / "src"))
        env.pop("REPRO_JOBS", None)
        env.pop("REPRO_CACHE", None)
        out = subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_engine.py"), "--timings-only"],
            env=env,
            cwd=wt,
            check=True,
            capture_output=True,
            text=True,
        )
        return json.loads(out.stdout)
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(wt)],
            cwd=REPO,
            check=False,
            capture_output=True,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--against",
        metavar="REF",
        default=None,
        help="git ref to benchmark as the baseline (in a temp worktree)",
    )
    parser.add_argument(
        "--timings-only",
        action="store_true",
        help="print the current tree's timings as JSON and exit",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: trace microbench + one suite, fail on regression",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO / "BENCH_engine.json"),
        help="where to write the report (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--trace-output",
        default=str(REPO / "BENCH_trace.json"),
        help="where to write the trace microbench (default: BENCH_trace.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    if args.timings_only:
        print(json.dumps(collect_timings()))
        return 0

    trace = write_trace_report(args.trace_output)
    print(f"wrote {args.trace_output}")
    print(f"  trace generation (serial, uncached): "
          f"seed {trace['totals_s']['seed']:.3f}s -> "
          f"optimized {trace['totals_s']['optimized']:.3f}s "
          f"({trace['speedup']}x)")

    current = collect_timings()
    baseline = measure_ref(args.against) if args.against else None

    payload = {
        "schema": 1,
        "bench": "experiment engine end-to-end wall clock (seconds)",
        "command": "PYTHONPATH=src python tools/bench_engine.py --against <ref>",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus_available": _cpus(),
        },
        "optimized": {"timings_s": current},
    }
    if baseline is not None:
        payload["baseline"] = {"ref": args.against, "timings_s": baseline}
        ref_suites = baseline.get("all_suites_serial_uncached")
        ref_sweeps = baseline.get("sweeps_serial_uncached")
        speedups = {}
        for mode, t in current.items():
            ref = ref_suites if mode.startswith("all_suites") else ref_sweeps
            if ref and t:
                speedups[mode] = round(ref / t, 2)
        payload["speedup_vs_baseline_serial"] = speedups

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    for mode, t in current.items():
        print(f"  {mode}: {t:.3f}s")
    return 0


def _cpus() -> int:
    try:
        from repro.experiments.parallel import available_cpus

        return available_cpus()
    except ImportError:  # pragma: no cover
        return os.cpu_count() or 1


if __name__ == "__main__":
    sys.exit(main())
