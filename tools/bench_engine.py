"""Benchmark the experiment engine end to end and emit ``BENCH_engine.json``.

Run from the repository root::

    PYTHONPATH=src python tools/bench_engine.py [--against REF] [-o PATH]

Measures wall-clock time for the engine's main entry points on the current
tree — the full default suite set (``ExperimentContext.all_suites()``) and
the stripe sweeps (figures 5-8) — serial/parallel and uncached/cold/warm
cache.  With ``--against REF`` it additionally checks out ``REF`` into a
temporary git worktree and measures the same serial-uncached workload
there, so the emitted JSON carries both baseline and optimized timings from
the same machine.  Older trees without the parallel/cache engine are
detected and measured in their only mode (serial, uncached).
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return round(time.perf_counter() - t0, 3)


def collect_timings() -> dict[str, float]:
    """Time the engine's entry points on whatever tree PYTHONPATH selects."""
    from repro.experiments import fig5_6, fig7_8
    from repro.experiments.runner import ExperimentContext

    try:
        ExperimentContext(cache=False)
        legacy = False
    except TypeError:  # pre-engine tree: serial and uncached is all it has
        legacy = True

    def fresh_ctx(**kw):
        return ExperimentContext() if legacy else ExperimentContext(**kw)

    def sweeps(ctx):
        fig5_6.run(ctx)
        fig7_8.run(ctx)

    timings = {
        "all_suites_serial_uncached": _time(
            lambda: fresh_ctx(cache=False).all_suites()
        ),
        "sweeps_serial_uncached": _time(lambda: sweeps(fresh_ctx(cache=False))),
    }
    if legacy:
        return timings

    from repro.cache import ResultCache

    timings["all_suites_parallel_uncached"] = _time(
        lambda: fresh_ctx(jobs=0, cache=False).all_suites()
    )
    with tempfile.TemporaryDirectory(prefix=".bench-cache-", dir=REPO) as td:
        timings["all_suites_cold_cache"] = _time(
            lambda: fresh_ctx(cache=ResultCache(td)).all_suites()
        )
        timings["all_suites_warm_cache"] = _time(
            lambda: fresh_ctx(cache=ResultCache(td)).all_suites()
        )
        timings["sweeps_cold_cache"] = _time(
            lambda: sweeps(fresh_ctx(cache=ResultCache(td)))
        )
        timings["sweeps_warm_cache"] = _time(
            lambda: sweeps(fresh_ctx(cache=ResultCache(td)))
        )
    return timings


def measure_ref(ref: str) -> dict[str, float]:
    """Measure ``ref`` in a temporary worktree (same machine, same tool)."""
    wt = REPO / ".bench-worktree"
    subprocess.run(
        ["git", "worktree", "add", "--detach", str(wt), ref],
        cwd=REPO,
        check=True,
        capture_output=True,
    )
    try:
        env = dict(os.environ, PYTHONPATH=str(wt / "src"))
        env.pop("REPRO_JOBS", None)
        env.pop("REPRO_CACHE", None)
        out = subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_engine.py"), "--timings-only"],
            env=env,
            cwd=wt,
            check=True,
            capture_output=True,
            text=True,
        )
        return json.loads(out.stdout)
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(wt)],
            cwd=REPO,
            check=False,
            capture_output=True,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--against",
        metavar="REF",
        default=None,
        help="git ref to benchmark as the baseline (in a temp worktree)",
    )
    parser.add_argument(
        "--timings-only",
        action="store_true",
        help="print the current tree's timings as JSON and exit",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO / "BENCH_engine.json"),
        help="where to write the report (default: BENCH_engine.json)",
    )
    args = parser.parse_args(argv)

    if args.timings_only:
        print(json.dumps(collect_timings()))
        return 0

    current = collect_timings()
    baseline = measure_ref(args.against) if args.against else None

    payload = {
        "schema": 1,
        "bench": "experiment engine end-to-end wall clock (seconds)",
        "command": "PYTHONPATH=src python tools/bench_engine.py --against <ref>",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus_available": _cpus(),
        },
        "optimized": {"timings_s": current},
    }
    if baseline is not None:
        payload["baseline"] = {"ref": args.against, "timings_s": baseline}
        ref_suites = baseline.get("all_suites_serial_uncached")
        ref_sweeps = baseline.get("sweeps_serial_uncached")
        speedups = {}
        for mode, t in current.items():
            ref = ref_suites if mode.startswith("all_suites") else ref_sweeps
            if ref and t:
                speedups[mode] = round(ref / t, 2)
        payload["speedup_vs_baseline_serial"] = speedups

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    for mode, t in current.items():
        print(f"  {mode}: {t:.3f}s")
    return 0


def _cpus() -> int:
    try:
        from repro.experiments.parallel import available_cpus

        return available_cpus()
    except ImportError:  # pragma: no cover
        return os.cpu_count() or 1


if __name__ == "__main__":
    sys.exit(main())
