"""Scale-out replay benchmark; emits ``BENCH_scale.json``.

Run from the repository root::

    PYTHONPATH=src python tools/bench_scale.py [-o PATH]

Measures streamed replay throughput over the scale grid
(:data:`repro.experiments.scale.SCALE_DISKS` x
:data:`repro.experiments.scale.SCALE_REQUESTS` — disks in {8, 64, 256},
requests in {25k, 1M, 10M}) for the per-object stepwise engine and the
columnar segmented engine.  Cells up to :data:`PREMATERIALIZE_MAX`
requests pre-materialize their chunk list so the timed region is the
``simulate()`` replay alone; the 10M-request cells regenerate the trace
chunk stream inside the timed region (pre-materializing them would hold
~0.5 GB, defeating the bounded-memory design they exist to exercise), so
their throughput includes chunked generation and is labelled
``streamed-end-to-end``.

Every cell replays both engines from the same chunk sequence and records
whether the two :class:`~repro.disksim.simulator.SimulationResult`\\ s are
identical — the structure-of-arrays kernels are required to be bit-equal
to the per-object path at every scale.

``--smoke`` is the CI quick mode: the 25k-request column only, gating on
result identity, on the committed ``BENCH_scale.json``'s cell set, and on
the 256-disk segmented speedup staying above
:data:`SMOKE_MIN_SPEEDUP` (with re-measurement, since individual cells
are tens of milliseconds and CI neighbours are noisy — a genuine
regression is persistent, a noise burst is not).
"""
from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Cells at or below this many requests keep their chunk list in memory
#: and time the replay alone; larger cells stream end to end.
PREMATERIALIZE_MAX = 1_000_000

#: Smoke gate on the 256-disk, 25k-request cell's segmented speedup.
#: The full-grid acceptance bar is 4x on the 1M-request column; the smoke
#: cell is milliseconds, so the gate keeps head-room for timer noise
#: while still catching any real loss of the columnar kernels.
SMOKE_MIN_SPEEDUP = 2.0

ENGINES = ("stepwise", "segmented")


def _time_us(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return round(time.perf_counter() - t0, 6)


def _repeats(num_requests: int) -> int:
    if num_requests <= 100_000:
        return 3
    if num_requests <= PREMATERIALIZE_MAX:
        return 2
    return 1


def bench_cell(num_disks: int, num_requests: int, repeats: int | None = None) -> dict:
    """Measure one grid cell; returns the cell's JSON row.

    Engines are timed round-robin within each repeat (not all repeats of
    one engine back to back) so slow machine drift lands evenly across
    engines before the per-engine minimum is taken.
    """
    from repro.disksim.simulator import simulate
    from repro.experiments.scale import scale_cell
    from repro.trace.stream import TraceStream

    if repeats is None:
        repeats = _repeats(num_requests)
    cell = scale_cell(num_disks, num_requests)
    replay_only = num_requests <= PREMATERIALIZE_MAX
    if replay_only:
        chunks = list(cell.stream().iter_chunks())

        def stream() -> TraceStream:
            return TraceStream(
                cell.program.name, cell.layout, 0.0,
                chunks=lambda: iter(chunks),
            )
    else:
        stream = cell.stream

    results: dict[str, object] = {}
    best = {eng: float("inf") for eng in ENGINES}
    for _ in range(repeats):
        for eng in ENGINES:
            took = _time_us(
                lambda: results.__setitem__(
                    eng, simulate(stream(), cell.params, engine=eng)
                )
            )
            if took < best[eng]:
                best[eng] = took

    identical = results["stepwise"] == results["segmented"]
    row: dict[str, object] = {
        "num_disks": num_disks,
        "num_requests": num_requests,
        "chunk_requests": cell.chunk_requests,
        "mode": "replay-only" if replay_only else "streamed-end-to-end",
        "repeats": repeats,
        "identical": bool(identical),
    }
    rps = {}
    drps = {}
    for eng in ENGINES:
        row[f"{eng}_s"] = best[eng]
        rps[eng] = round(num_requests / best[eng])
        drps[eng] = round(num_disks * num_requests / best[eng])
    row["requests_per_s"] = rps
    row["disk_requests_per_s"] = drps
    row["speedup_segmented"] = round(best["stepwise"] / best["segmented"], 2)
    return row


def collect_grid(disks=None, requests=None) -> dict:
    from repro.experiments.scale import SCALE_DISKS, SCALE_REQUESTS

    disks = list(disks if disks is not None else SCALE_DISKS)
    requests = list(requests if requests is not None else SCALE_REQUESTS)
    cells = []
    for nr in requests:
        for nd in disks:
            row = bench_cell(nd, nr)
            cells.append(row)
            print(
                f"  {nd:4d} disks x {nr:>10,} requests [{row['mode']}]: "
                f"stepwise {row['stepwise_s']:.3f}s -> "
                f"segmented {row['segmented_s']:.3f}s "
                f"({row['speedup_segmented']}x, "
                f"{row['requests_per_s']['segmented']:,} req/s, "
                f"identical={row['identical']})"
            )
    return {"disks": disks, "requests": requests, "cells": cells}


def write_report(path: str | Path) -> dict:
    grid = collect_grid()
    payload = {
        "schema": 1,
        "bench": "streamed replay throughput across (disks x requests) "
        "scale grid (seconds)",
        "command": "PYTHONPATH=src python tools/bench_scale.py",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "engines": list(ENGINES),
        "note": (
            "replay-only cells pre-materialize the chunk list and time "
            "simulate() alone; streamed-end-to-end cells regenerate the "
            "chunk stream inside the timed region (bounded memory at 10M "
            "requests), so their throughput includes chunked trace "
            "generation.  'identical' asserts the segmented "
            "(structure-of-arrays) result equals the stepwise "
            "(per-object) result bit for bit at that scale."
        ),
        "results": grid,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return grid


def _committed_cells(path: Path):
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        return {
            (c["num_disks"], c["num_requests"]): c
            for c in data["results"]["cells"]
        }
    except (KeyError, TypeError, ValueError):
        return None


def run_smoke(baseline_path: Path, attempts: int = 3) -> int:
    """CI quick mode: 25k column, identity + speedup + cell-set gates."""
    from repro.experiments.scale import SCALE_DISKS, SCALE_REQUESTS

    failed = False
    committed = _committed_cells(baseline_path)
    if committed is None:
        print(f"  no committed {baseline_path.name}; measurement gates only")
    else:
        expected = {
            (nd, nr) for nr in SCALE_REQUESTS for nd in SCALE_DISKS
        }
        if set(committed) != expected:
            print(
                f"SMOKE FAIL: {baseline_path.name} cell set drifted: "
                f"missing {sorted(expected - set(committed))}, "
                f"extra {sorted(set(committed) - expected)}"
            )
            failed = True
        not_identical = [k for k, c in committed.items() if not c.get("identical")]
        if not_identical:
            print(
                f"SMOKE FAIL: committed {baseline_path.name} records "
                f"non-identical engine results at {sorted(not_identical)}"
            )
            failed = True

    smoke_requests = min(SCALE_REQUESTS)
    rows = {}
    for nd in SCALE_DISKS:
        row = bench_cell(nd, smoke_requests, repeats=3)
        rows[nd] = row
        print(
            f"  {nd:4d} disks x {smoke_requests:,} requests: "
            f"stepwise {row['stepwise_s']*1e3:.1f}ms -> "
            f"segmented {row['segmented_s']*1e3:.1f}ms "
            f"({row['speedup_segmented']}x, identical={row['identical']})"
        )
        if not row["identical"]:
            print(
                f"SMOKE FAIL: engines disagree at {nd} disks x "
                f"{smoke_requests} requests"
            )
            failed = True

    gate_disks = max(SCALE_DISKS)
    speedup = rows[gate_disks]["speedup_segmented"]
    for attempt in range(2, attempts + 1):
        if speedup >= SMOKE_MIN_SPEEDUP:
            break
        # Persistent-vs-burst: a real regression survives re-measurement,
        # one noisy container neighbour does not.  Keep the best ratio.
        again = bench_cell(gate_disks, smoke_requests, repeats=3)
        print(
            f"  re-measure {attempt}/{attempts}: "
            f"{again['speedup_segmented']}x"
        )
        speedup = max(speedup, again["speedup_segmented"])
        if not again["identical"]:
            print("SMOKE FAIL: engines disagree on re-measure")
            failed = True
    print(
        f"  gate: {gate_disks}-disk segmented speedup {speedup}x "
        f"(limit {SMOKE_MIN_SPEEDUP}x)"
    )
    if speedup < SMOKE_MIN_SPEEDUP:
        print(
            f"SMOKE FAIL: segmented replay below {SMOKE_MIN_SPEEDUP}x at "
            f"{gate_disks} disks"
        )
        failed = True
    if failed:
        return 1
    print("smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: 25k-request column, identity + speedup gates",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO / "BENCH_scale.json"),
        help="where to write the report (default: BENCH_scale.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(Path(args.output))

    grid = write_report(args.output)
    print(f"wrote {args.output}")
    bad = [c for c in grid["cells"] if not c["identical"]]
    if bad:
        for c in bad:
            print(
                f"ENGINE MISMATCH: {c['num_disks']} disks x "
                f"{c['num_requests']} requests"
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
