"""Scale-out replay benchmark; emits ``BENCH_scale.json``.

Run from the repository root::

    PYTHONPATH=src python tools/bench_scale.py [-o PATH]

Measures streamed replay throughput over the scale grid
(:data:`repro.experiments.scale.SCALE_DISKS` x
:data:`repro.experiments.scale.SCALE_REQUESTS` — disks in {8, 64, 256},
requests in {25k, 1M, 10M}) for the per-object stepwise engine and the
columnar segmented engine.  Cells up to :data:`PREMATERIALIZE_MAX`
requests pre-materialize their chunk list so the timed region is the
``simulate()`` replay alone; the 10M-request cells regenerate the trace
chunk stream inside the timed region (pre-materializing them would hold
~0.5 GB, defeating the bounded-memory design they exist to exercise), so
their throughput includes chunked generation and is labelled
``streamed-end-to-end``.

Every cell replays both engines from the same chunk sequence and records
whether the two :class:`~repro.disksim.simulator.SimulationResult`\\ s are
identical — the structure-of-arrays kernels are required to be bit-equal
to the per-object path at every scale.

Streamed-end-to-end cells additionally time the forked producer/consumer
pipeline (``simulate(..., pipeline=True)``, :mod:`repro.trace.ring`) and
record its bit-identity against the in-process segmented replay;
``--pipeline`` extends that measurement to every cell.  Overlap speedup
requires a second CPU — on a single-core box the pipeline is parity-bound
and only identity is meaningful.

``--smoke`` is the CI quick mode: the 25k-request column only, gating on
result identity, on the committed ``BENCH_scale.json``'s cell set, and on
the 256-disk segmented speedup staying above
:data:`SMOKE_MIN_SPEEDUP` (with re-measurement, since individual cells
are tens of milliseconds and CI neighbours are noisy — a genuine
regression is persistent, a noise burst is not).  It also gates the
pipelined replay's bit-identity (its speedup only where ``available_cpus()
>= 2``) and runs a 2-worker sharded sweep whose merged suites must equal a
serial run with every unique shard computed exactly once.
"""
from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Cells at or below this many requests keep their chunk list in memory
#: and time the replay alone; larger cells stream end to end.
PREMATERIALIZE_MAX = 1_000_000

#: Smoke gate on the 256-disk, 25k-request cell's segmented speedup.
#: The full-grid acceptance bar is 4x on the 1M-request column; the smoke
#: cell is milliseconds, so the gate keeps head-room for timer noise
#: while still catching any real loss of the columnar kernels.
SMOKE_MIN_SPEEDUP = 2.0

ENGINES = ("stepwise", "segmented")


def _time_us(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return round(time.perf_counter() - t0, 6)


def _repeats(num_requests: int) -> int:
    if num_requests <= 100_000:
        return 3
    if num_requests <= PREMATERIALIZE_MAX:
        return 2
    return 1


def bench_cell(
    num_disks: int,
    num_requests: int,
    repeats: int | None = None,
    pipeline: bool | None = None,
) -> dict:
    """Measure one grid cell; returns the cell's JSON row.

    Engines are timed round-robin within each repeat (not all repeats of
    one engine back to back) so slow machine drift lands evenly across
    engines before the per-engine minimum is taken.

    ``pipeline`` additionally times the segmented replay with the forked
    producer pipeline (``simulate(..., pipeline=True)``) and records its
    bit-identity against the in-process segmented result.  The default
    (``None``) measures it on streamed-end-to-end cells only — those are
    the cells whose chunk *production* is on the timed path and therefore
    the ones the pipeline can overlap.
    """
    from repro.disksim.simulator import simulate
    from repro.experiments.scale import scale_cell
    from repro.trace.ring import pipeline_available
    from repro.trace.stream import TraceStream

    if repeats is None:
        repeats = _repeats(num_requests)
    cell = scale_cell(num_disks, num_requests)
    replay_only = num_requests <= PREMATERIALIZE_MAX
    if replay_only:
        chunks = list(cell.stream().iter_chunks())

        def stream() -> TraceStream:
            return TraceStream(
                cell.program.name, cell.layout, 0.0,
                chunks=lambda: iter(chunks),
                chunk_requests=cell.chunk_requests,
            )
    else:
        stream = cell.stream
    if pipeline is None:
        pipeline = not replay_only
    pipeline = pipeline and pipeline_available()

    results: dict[str, object] = {}
    best = {eng: float("inf") for eng in ENGINES}
    best_pipe = float("inf")
    for _ in range(repeats):
        for eng in ENGINES:
            took = _time_us(
                lambda: results.__setitem__(
                    eng, simulate(stream(), cell.params, engine=eng)
                )
            )
            if took < best[eng]:
                best[eng] = took
        if pipeline:
            took = _time_us(
                lambda: results.__setitem__(
                    "pipelined",
                    simulate(
                        stream(), cell.params, engine="segmented",
                        pipeline=True,
                    ),
                )
            )
            if took < best_pipe:
                best_pipe = took

    identical = results["stepwise"] == results["segmented"]
    row: dict[str, object] = {
        "num_disks": num_disks,
        "num_requests": num_requests,
        "chunk_requests": cell.chunk_requests,
        "mode": "replay-only" if replay_only else "streamed-end-to-end",
        "repeats": repeats,
        "identical": bool(identical),
    }
    rps = {}
    drps = {}
    for eng in ENGINES:
        row[f"{eng}_s"] = best[eng]
        rps[eng] = round(num_requests / best[eng])
        drps[eng] = round(num_disks * num_requests / best[eng])
    row["requests_per_s"] = rps
    row["disk_requests_per_s"] = drps
    row["speedup_segmented"] = round(best["stepwise"] / best["segmented"], 2)
    if pipeline:
        row["pipelined_s"] = best_pipe
        row["pipeline_speedup"] = round(best["segmented"] / best_pipe, 2)
        row["pipeline_identical"] = bool(
            results["pipelined"] == results["segmented"]
        )
    return row


def collect_grid(disks=None, requests=None, pipeline: bool | None = None) -> dict:
    from repro.experiments.scale import SCALE_DISKS, SCALE_REQUESTS

    disks = list(disks if disks is not None else SCALE_DISKS)
    requests = list(requests if requests is not None else SCALE_REQUESTS)
    cells = []
    for nr in requests:
        for nd in disks:
            row = bench_cell(nd, nr, pipeline=pipeline)
            cells.append(row)
            extra = ""
            if "pipelined_s" in row:
                extra = (
                    f", pipelined {row['pipelined_s']:.3f}s "
                    f"({row['pipeline_speedup']}x, "
                    f"pipeline_identical={row['pipeline_identical']})"
                )
            print(
                f"  {nd:4d} disks x {nr:>10,} requests [{row['mode']}]: "
                f"stepwise {row['stepwise_s']:.3f}s -> "
                f"segmented {row['segmented_s']:.3f}s "
                f"({row['speedup_segmented']}x, "
                f"{row['requests_per_s']['segmented']:,} req/s, "
                f"identical={row['identical']})" + extra
            )
    return {"disks": disks, "requests": requests, "cells": cells}


def write_report(path: str | Path, pipeline: bool | None = None) -> dict:
    from repro.experiments.parallel import available_cpus

    grid = collect_grid(pipeline=pipeline)
    payload = {
        "schema": 1,
        "bench": "streamed replay throughput across (disks x requests) "
        "scale grid (seconds)",
        "command": "PYTHONPATH=src python tools/bench_scale.py",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": available_cpus(),
        },
        "engines": list(ENGINES),
        "note": (
            "replay-only cells pre-materialize the chunk list and time "
            "simulate() alone; streamed-end-to-end cells regenerate the "
            "chunk stream inside the timed region (bounded memory at 10M "
            "requests), so their throughput includes chunked trace "
            "generation.  'identical' asserts the segmented "
            "(structure-of-arrays) result equals the stepwise "
            "(per-object) result bit for bit at that scale.  "
            "streamed-end-to-end cells also time the forked "
            "producer/consumer pipeline (simulate(pipeline=True)); "
            "'pipeline_identical' asserts its result equals the in-process "
            "segmented replay bit for bit.  pipeline_speedup > 1 needs a "
            "second CPU (see machine.cpus): with one, the pipeline is "
            "parity-bound — correctness holds, overlap cannot."
        ),
        "results": grid,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return grid


def _committed_cells(path: Path):
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        return {
            (c["num_disks"], c["num_requests"]): c
            for c in data["results"]["cells"]
        }
    except (KeyError, TypeError, ValueError):
        return None


def run_smoke(baseline_path: Path, attempts: int = 3) -> int:
    """CI quick mode: 25k column, identity + speedup + cell-set gates."""
    from repro.experiments.scale import SCALE_DISKS, SCALE_REQUESTS

    failed = False
    committed = _committed_cells(baseline_path)
    if committed is None:
        print(f"  no committed {baseline_path.name}; measurement gates only")
    else:
        expected = {
            (nd, nr) for nr in SCALE_REQUESTS for nd in SCALE_DISKS
        }
        if set(committed) != expected:
            print(
                f"SMOKE FAIL: {baseline_path.name} cell set drifted: "
                f"missing {sorted(expected - set(committed))}, "
                f"extra {sorted(set(committed) - expected)}"
            )
            failed = True
        not_identical = [k for k, c in committed.items() if not c.get("identical")]
        if not_identical:
            print(
                f"SMOKE FAIL: committed {baseline_path.name} records "
                f"non-identical engine results at {sorted(not_identical)}"
            )
            failed = True
        pipe_bad = [
            k
            for k, c in committed.items()
            if c.get("mode") == "streamed-end-to-end"
            and not c.get("pipeline_identical")
        ]
        if pipe_bad:
            print(
                f"SMOKE FAIL: committed {baseline_path.name} "
                f"streamed-end-to-end cells lack pipeline_identical=True "
                f"at {sorted(pipe_bad)}"
            )
            failed = True

    smoke_requests = min(SCALE_REQUESTS)
    rows = {}
    for nd in SCALE_DISKS:
        row = bench_cell(nd, smoke_requests, repeats=3)
        rows[nd] = row
        print(
            f"  {nd:4d} disks x {smoke_requests:,} requests: "
            f"stepwise {row['stepwise_s']*1e3:.1f}ms -> "
            f"segmented {row['segmented_s']*1e3:.1f}ms "
            f"({row['speedup_segmented']}x, identical={row['identical']})"
        )
        if not row["identical"]:
            print(
                f"SMOKE FAIL: engines disagree at {nd} disks x "
                f"{smoke_requests} requests"
            )
            failed = True

    gate_disks = max(SCALE_DISKS)
    speedup = rows[gate_disks]["speedup_segmented"]
    for attempt in range(2, attempts + 1):
        if speedup >= SMOKE_MIN_SPEEDUP:
            break
        # Persistent-vs-burst: a real regression survives re-measurement,
        # one noisy container neighbour does not.  Keep the best ratio.
        again = bench_cell(gate_disks, smoke_requests, repeats=3)
        print(
            f"  re-measure {attempt}/{attempts}: "
            f"{again['speedup_segmented']}x"
        )
        speedup = max(speedup, again["speedup_segmented"])
        if not again["identical"]:
            print("SMOKE FAIL: engines disagree on re-measure")
            failed = True
    print(
        f"  gate: {gate_disks}-disk segmented speedup {speedup}x "
        f"(limit {SMOKE_MIN_SPEEDUP}x)"
    )
    if speedup < SMOKE_MIN_SPEEDUP:
        print(
            f"SMOKE FAIL: segmented replay below {SMOKE_MIN_SPEEDUP}x at "
            f"{gate_disks} disks"
        )
        failed = True
    if not _smoke_pipeline(gate_disks, smoke_requests):
        failed = True
    if not _smoke_shard():
        failed = True
    if failed:
        return 1
    print("smoke ok")
    return 0


def _smoke_pipeline(num_disks: int, num_requests: int) -> bool:
    """Pipelined replay smoke: bit-identity always; overlap speedup only
    where a second CPU exists to overlap onto."""
    from repro.experiments.parallel import available_cpus
    from repro.trace.ring import pipeline_available

    if not pipeline_available():
        print("  pipeline: fork unavailable on this platform; skipped")
        return True
    row = bench_cell(num_disks, num_requests, repeats=3, pipeline=True)
    cpus = available_cpus()
    print(
        f"  pipeline: {num_disks} disks x {num_requests:,} requests: "
        f"segmented {row['segmented_s']*1e3:.1f}ms -> "
        f"pipelined {row['pipelined_s']*1e3:.1f}ms "
        f"({row['pipeline_speedup']}x, "
        f"identical={row['pipeline_identical']}, cpus={cpus})"
    )
    ok = True
    if not row["pipeline_identical"]:
        print("SMOKE FAIL: pipelined replay diverges from in-process replay")
        ok = False
    if cpus >= 2 and row["pipeline_speedup"] < 1.0:
        # With real parallelism available the pipeline must at least not
        # lose to the serial path; on one CPU it is parity-bound (fork +
        # copy overhead with nothing to overlap onto) and only identity
        # is gated.
        print(
            f"SMOKE FAIL: pipelined replay slower than serial "
            f"({row['pipeline_speedup']}x) with {cpus} CPUs available"
        )
        ok = False
    return ok


def _smoke_shard() -> bool:
    """Sharded sweep smoke: a 2-worker sharded run must merge bit-identical
    to the serial suites, computing each unique shard exactly once."""
    import tempfile

    from repro.experiments.parallel import SuiteSpec
    from repro.experiments.runner import ExperimentContext
    from repro.experiments.shard import ShardScheduler
    from repro.cache import ResultCache

    workload = "swim"
    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as td:
        serial = ExperimentContext(cache=ResultCache(td + "/serial"))
        want = serial.suite(workload)
        # Two workers regardless of this machine's core count (the pool
        # machinery is what's under test), plus a duplicate spec that must
        # collapse via dedupe rather than recompute.
        sched = ShardScheduler(
            jobs=2, cache_root=td + "/sharded", clamp_to_cpus=False
        )
        specs = [SuiteSpec(workload), SuiteSpec(workload, key=("dup",))]
        got, got_dup = sched.run(specs)
        stats = sched.stats
        identical = all(
            want.results[s] == got.results[s] for s in want.results
        ) and list(want.results) == list(got.results)
        dup_identical = all(
            got.results[s] == got_dup.results[s] for s in got.results
        )
        print(
            f"  shard: {workload} x2 specs, 2 workers: "
            f"requested={stats.requested} unique={stats.unique} "
            f"deduped={stats.deduped} computed={stats.computed} "
            f"identical={identical}"
        )
        ok = True
        if not identical or not dup_identical:
            print("SMOKE FAIL: sharded merge diverges from serial suites")
            ok = False
        if stats.computed != stats.unique or stats.deduped == 0:
            print(
                "SMOKE FAIL: shard dedupe broken "
                f"(unique={stats.unique}, computed={stats.computed}, "
                f"deduped={stats.deduped})"
            )
            ok = False
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: 25k-request column, identity + speedup gates, "
        "pipelined bit-identity, 2-worker sharded-sweep merge",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="measure the forked producer pipeline on every cell (default: "
        "streamed-end-to-end cells only)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO / "BENCH_scale.json"),
        help="where to write the report (default: BENCH_scale.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(Path(args.output))

    grid = write_report(args.output, pipeline=True if args.pipeline else None)
    print(f"wrote {args.output}")
    import bench_history

    for flag in bench_history.record(args.output):
        print(f"  REGRESSION {Path(args.output).name}: {flag}")
    bad = [
        c
        for c in grid["cells"]
        if not c["identical"] or c.get("pipeline_identical") is False
    ]
    if bad:
        for c in bad:
            print(
                f"ENGINE MISMATCH: {c['num_disks']} disks x "
                f"{c['num_requests']} requests"
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
