"""Validate observability artifacts: Chrome trace JSON and run manifests.

Run from the repository root::

    PYTHONPATH=src python tools/validate_obs.py --trace run.trace.json \
                                                --manifest repro-run-manifest.json

Checks the emitted span timeline against the Chrome trace-event contract
(:func:`repro.obs.export.validate_chrome_trace`) and the run manifest
against its schema (:func:`repro.obs.manifest.validate_manifest`),
printing a one-line summary per file and every problem found.  Exits
non-zero when any file is missing or invalid — this is the check the CI
obs-smoke job applies to a fresh ``repro-experiments --obs`` run.

``--require-spans NAME [NAME ...]`` additionally asserts the trace
contains complete events with the given names (e.g. ``suite.run``
``sim.replay``), which catches an exporter that emits structurally valid
but empty timelines.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: Path) -> tuple[object, list[str]]:
    try:
        return json.loads(path.read_text()), []
    except FileNotFoundError:
        return None, [f"{path}: file not found"]
    except json.JSONDecodeError as exc:
        return None, [f"{path}: not valid JSON ({exc})"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="Chrome trace-event JSON written by --trace-out",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="run manifest written by --obs / --manifest-out",
    )
    parser.add_argument(
        "--require-spans",
        nargs="*",
        default=(),
        metavar="NAME",
        help="span names the trace must contain at least once",
    )
    args = parser.parse_args(argv)
    if args.trace is None and args.manifest is None:
        parser.error("nothing to validate: pass --trace and/or --manifest")

    from repro.obs.export import span_names, validate_chrome_trace
    from repro.obs.manifest import validate_manifest

    problems: list[str] = []

    if args.trace is not None:
        path = Path(args.trace)
        obj, errs = _load(path)
        problems += errs
        if obj is not None:
            errs = [f"{path}: {p}" for p in validate_chrome_trace(obj)]
            problems += errs
            if not errs:
                names = set(span_names(obj))
                missing = [n for n in args.require_spans if n not in names]
                problems += [
                    f"{path}: required span {n!r} absent" for n in missing
                ]
                print(
                    f"trace ok: {path} "
                    f"({len(obj['traceEvents'])} events, "
                    f"{len(names)} distinct span names)"
                )

    if args.manifest is not None:
        path = Path(args.manifest)
        obj, errs = _load(path)
        problems += errs
        if obj is not None:
            errs = [f"{path}: {p}" for p in validate_manifest(obj)]
            problems += errs
            if not errs:
                counters = obj["metrics"].get("counters", {})
                print(
                    f"manifest ok: {path} "
                    f"({len(obj['phases'])} phases, "
                    f"{len(counters)} metric counters)"
                )

    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
