"""Validate observability artifacts: Chrome trace JSON and run manifests.

Run from the repository root::

    PYTHONPATH=src python tools/validate_obs.py --trace run.trace.json \
                                                --manifest repro-run-manifest.json

Checks the emitted span timeline against the Chrome trace-event contract
(:func:`repro.obs.export.validate_chrome_trace`) and the run manifest
against its schema (:func:`repro.obs.manifest.validate_manifest`),
printing a one-line summary per file and every problem found.  Exits
non-zero when any file is missing or invalid — this is the check the CI
obs-smoke job applies to a fresh ``repro-experiments --obs`` run.

``--require-spans NAME [NAME ...]`` additionally asserts the trace
contains complete events with the given names (e.g. ``suite.run``
``sim.replay``), which catches an exporter that emits structurally valid
but empty timelines.

``--require-timeline`` asserts the trace carries the per-disk power-state
timeline tracks (paired ``b``/``e`` async events plus a power counter
track per disk, on the synthetic timeline pid).  ``--require-ledger``
asserts the manifest embeds the decision-attribution ledger and that the
ledger's cause buckets conserve its reported total energy.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: Path) -> tuple[object, list[str]]:
    try:
        return json.loads(path.read_text()), []
    except FileNotFoundError:
        return None, [f"{path}: file not found"]
    except json.JSONDecodeError as exc:
        return None, [f"{path}: not valid JSON ({exc})"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="Chrome trace-event JSON written by --trace-out",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="run manifest written by --obs / --manifest-out",
    )
    parser.add_argument(
        "--require-spans",
        nargs="*",
        default=(),
        metavar="NAME",
        help="span names the trace must contain at least once",
    )
    parser.add_argument(
        "--require-timeline",
        action="store_true",
        help="trace must contain the per-disk power-state timeline tracks",
    )
    parser.add_argument(
        "--require-ledger",
        action="store_true",
        help="manifest must embed a conserving decision-attribution ledger",
    )
    args = parser.parse_args(argv)
    if args.trace is None and args.manifest is None:
        parser.error("nothing to validate: pass --trace and/or --manifest")

    from repro.obs.export import span_names, validate_chrome_trace
    from repro.obs.manifest import validate_manifest

    problems: list[str] = []

    def check_timeline_tracks(obj: dict, where: Path) -> list[str]:
        """Per-disk power-state tracks: paired async events + counters."""
        from repro.obs.export import TIMELINE_PID

        errs: list[str] = []
        begins: dict[tuple, int] = {}
        ends: dict[tuple, int] = {}
        counters = 0
        tids = set()
        for ev in obj.get("traceEvents", ()):
            if ev.get("pid") != TIMELINE_PID:
                continue
            ph = ev.get("ph")
            if ph == "b":
                begins[(ev.get("id"), ev.get("name"))] = (
                    begins.get((ev.get("id"), ev.get("name")), 0) + 1
                )
                tids.add(ev.get("tid"))
            elif ph == "e":
                ends[(ev.get("id"), ev.get("name"))] = (
                    ends.get((ev.get("id"), ev.get("name")), 0) + 1
                )
            elif ph == "C":
                counters += 1
        if not begins:
            errs.append(f"{where}: no per-disk timeline tracks found")
            return errs
        if begins != ends:
            unpaired = set(begins.items()) ^ set(ends.items())
            errs.append(
                f"{where}: {len(unpaired)} unpaired async timeline events"
            )
        if not counters:
            errs.append(f"{where}: timeline has no power counter events")
        print(
            f"timeline ok: {where} ({len(tids)} disk tracks, "
            f"{sum(begins.values())} segments, {counters} power samples)"
        )
        return errs

    def check_ledger(obj: dict, where: Path) -> list[str]:
        """Attribution-ledger schema + conservation inside the manifest."""
        errs: list[str] = []
        att = obj.get("attribution")
        if not isinstance(att, dict):
            return [f"{where}: manifest has no 'attribution' section"]
        for key in ("workload", "scheme", "engine", "ledger"):
            if key not in att:
                errs.append(f"{where}: attribution missing {key!r}")
        ledger = att.get("ledger")
        if not isinstance(ledger, dict):
            return errs + [f"{where}: attribution.ledger is not an object"]
        for key in (
            "full_idle_w", "total_energy_j", "total_saved_j",
            "causes", "glossary",
        ):
            if key not in ledger:
                errs.append(f"{where}: ledger missing {key!r}")
        causes = ledger.get("causes", [])
        fields = (
            "cause", "transitions", "cost_j",
            "residency_s", "saved_j", "energy_j",
        )
        for i, cause in enumerate(causes):
            for key in fields:
                if key not in cause:
                    errs.append(f"{where}: ledger cause[{i}] missing {key!r}")
        if not errs and causes:
            total = ledger["total_energy_j"]
            bucketed = sum(c["energy_j"] for c in causes)
            if abs(bucketed - total) > 1e-6 * max(1.0, abs(total)):
                errs.append(
                    f"{where}: ledger causes sum to {bucketed!r}, "
                    f"total_energy_j is {total!r}"
                )
        if not errs:
            print(
                f"ledger ok: {where} ({att.get('workload')}/"
                f"{att.get('scheme')}, {len(causes)} causes, "
                f"{ledger['total_saved_j']:.1f} J saved of "
                f"{ledger['total_energy_j']:.1f} J)"
            )
        return errs

    if args.trace is not None:
        path = Path(args.trace)
        obj, errs = _load(path)
        problems += errs
        if obj is not None:
            errs = [f"{path}: {p}" for p in validate_chrome_trace(obj)]
            problems += errs
            if not errs:
                names = set(span_names(obj))
                missing = [n for n in args.require_spans if n not in names]
                problems += [
                    f"{path}: required span {n!r} absent" for n in missing
                ]
                print(
                    f"trace ok: {path} "
                    f"({len(obj['traceEvents'])} events, "
                    f"{len(names)} distinct span names)"
                )
                if args.require_timeline:
                    problems += check_timeline_tracks(obj, path)

    if args.manifest is not None:
        path = Path(args.manifest)
        obj, errs = _load(path)
        problems += errs
        if obj is not None:
            errs = [f"{path}: {p}" for p in validate_manifest(obj)]
            problems += errs
            if not errs:
                counters = obj["metrics"].get("counters", {})
                print(
                    f"manifest ok: {path} "
                    f"({len(obj['phases'])} phases, "
                    f"{len(counters)} metric counters)"
                )
                if args.require_ledger:
                    problems += check_ledger(obj, path)

    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
