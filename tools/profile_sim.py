"""Profile the experiment engine's hot path under cProfile.

Run from the repository root::

    PYTHONPATH=src python tools/profile_sim.py [workload ...] [--sort KEY]
                                               [--limit N] [--coverage]
                                               [--engine ENGINE]
    PYTHONPATH=src python tools/profile_sim.py --memory [--disks N]
                                               [--requests N,N,...]

With no arguments, profiles the full default suite set (every Table 2
benchmark under all 7 schemes), serial and uncached — the same work
``ExperimentContext.all_suites()`` does on a cold run.  Prints the top
functions by ``tottime`` (override with ``--sort cumulative`` etc.).
``--coverage`` additionally prints the replay-engine coverage counters
plus a breakdown of where sub-requests ran (vector/scalar/stepwise) and
*why* work left the batch kernels — the ``fallback_*`` escape reasons and
the window-level bailout counters; ``--engine`` forces a replay engine
(default ``auto``).

``--memory`` switches to the bounded-memory verification instead of
cProfile: it replays synthetic scale cells
(:mod:`repro.experiments.scale`) as chunked streams under ``tracemalloc``
and reports the Python-heap peak plus the process's ``ru_maxrss`` at each
trace length.  Because the streamed pipeline holds one chunk of columns
plus per-disk state, the heap peak must stay essentially flat from 10^6
to 10^7 requests — the run exits non-zero if it does not.  Scales run
smallest first, so a flat ``ru_maxrss`` across rows corroborates the
tracemalloc numbers (RSS never shrinks within a process).

This is the harness behind the numbers in docs/performance.md; use it to
check that a change actually moves the needle before trusting wall-clock
timings, and ``tools/bench_engine.py`` for the end-to-end measurement.
"""
from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def print_coverage_breakdown(cov: dict[str, int]) -> None:
    """Pretty-print the raw coverage counters plus a scalar-bailout digest.

    The digest answers the two tuning questions directly: *where did the
    sub-requests run* (vector / scalar kernel / stepwise escapes) and *why
    did work leave the batch kernels* (per-reason ``fallback_*`` escapes
    and window-level bailouts), so a routing change can be judged without
    mentally diffing sixteen counters.
    """
    print("replay engine coverage:")
    for key, value in cov.items():
        print(f"  {key}: {value}")

    sub_paths = (
        ("vector kernel", cov.get("subrequests_vector", 0)),
        ("scalar kernel", cov.get("subrequests_scalar", 0)),
        ("stepwise/exact", cov.get("subrequests_stepwise", 0)),
    )
    total_subs = sum(v for _, v in sub_paths)
    print("sub-request placement:")
    if total_subs:
        for name, value in sub_paths:
            print(f"  {name}: {value} ({100.0 * value / total_subs:.1f}%)")
    else:
        print("  (no sub-requests replayed)")

    fallbacks = {
        key[len("fallback_"):].replace("_", " "): value
        for key, value in cov.items()
        if key.startswith("fallback_")
    }
    total_fb = sum(fallbacks.values())
    print("scalar bailout reasons (escapes to the exact state machine):")
    if total_fb:
        for name, value in sorted(
            fallbacks.items(), key=lambda kv: kv[1], reverse=True
        ):
            if value:
                print(f"  {name}: {value} ({100.0 * value / total_fb:.1f}%)")
    else:
        print("  (none — every sub-request stayed on the batch kernels)")

    print("vector-window bailouts:")
    print(f"  rounding-guard exits: {cov.get('bailouts', 0)}")
    print(
        "  windows too short for the vector kernel: "
        f"{cov.get('windows_scalar_short_run', 0)}"
    )
    print(
        "  directives clamped mid-service: "
        f"{cov.get('directive_mid_service', 0)}"
    )

    import resource

    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        f"process peak RSS: {rss_kib / 2**10:.1f} MiB "
        "(bounded-memory verification: tools/profile_sim.py --memory)"
    )


#: ``--memory`` fails if the Python-heap peak grows by more than this
#: factor while the request count grows 10x — a truly streaming replay
#: is chunk-bounded, so the expected growth is ~1.0x.
MEMORY_GROWTH_LIMIT = 2.0


def run_memory(
    engine: str,
    num_disks: int,
    requests_list: list[int],
    chunk_requests: int,
    pipeline: bool = False,
) -> int:
    """Verify streamed-replay peak memory is bounded by the chunk size.

    ``pipeline`` runs each replay through the forked producer ring
    (:mod:`repro.trace.ring`); the consumer-side heap then holds the ring's
    shared slots plus one copied chunk, so the same flat-growth bound
    applies (the producer's memory lives in its own process).
    """
    import resource
    import time
    import tracemalloc

    from repro.disksim.simulator import simulate
    from repro.experiments.scale import scale_cell

    print(
        f"streamed replay memory profile: {num_disks} disks, "
        f"engine={engine}, chunk_requests={chunk_requests}"
        + (", pipelined" if pipeline else "")
    )
    rows = []
    for nr in sorted(requests_list):
        cell = scale_cell(num_disks, nr, chunk_requests=chunk_requests)
        tracemalloc.start()
        tracemalloc.reset_peak()
        t0 = time.perf_counter()
        res = simulate(
            cell.stream(), cell.params, engine=engine, pipeline=pipeline
        )
        took = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if res.num_requests != nr:  # pragma: no cover - replay bug
            print(f"ERROR: replayed {res.num_requests} of {nr} requests")
            return 1
        rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        rows.append((nr, peak))
        print(
            f"  {nr:>12,} requests: tracemalloc peak {peak / 2**20:7.1f} MiB,"
            f" ru_maxrss {rss_kib / 2**10:7.1f} MiB, {took:7.2f}s"
        )
    if len(rows) >= 2:
        growth = rows[-1][1] / rows[0][1]
        scale = rows[-1][0] / rows[0][0]
        print(
            f"  heap-peak growth: {growth:.2f}x over a {scale:.0f}x longer "
            f"trace (limit {MEMORY_GROWTH_LIMIT}x)"
        )
        if growth > MEMORY_GROWTH_LIMIT:
            print("MEMORY FAIL: streamed replay peak grows with trace length")
            return 1
        print("bounded-memory check ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "workloads",
        nargs="*",
        help="benchmark names to profile (default: all Table 2 workloads)",
    )
    parser.add_argument("--sort", default="tottime", help="pstats sort key")
    parser.add_argument(
        "--limit", type=int, default=25, help="rows of profile output"
    )
    parser.add_argument(
        "--coverage",
        action="store_true",
        help="print the replay-engine coverage counters after the run",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="run with repro.obs enabled and print the metric snapshot "
        "(engine selection, fallbacks, per-RPM service counts, cache)",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=("auto", "stepwise", "segmented"),
        help="replay engine to profile (default: auto)",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="verify streamed-replay peak memory stays bounded across "
        "trace lengths (tracemalloc + ru_maxrss on scale cells)",
    )
    parser.add_argument(
        "--disks",
        type=int,
        default=256,
        help="disk count for --memory scale cells (default: 256)",
    )
    parser.add_argument(
        "--requests",
        default="1000000,10000000",
        help="comma-separated request counts for --memory "
        "(default: 1000000,10000000)",
    )
    parser.add_argument(
        "--chunk-requests",
        type=int,
        default=65536,
        help="streaming chunk size for --memory (default: 65536)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="with --memory: replay through the forked producer pipeline "
        "(simulate(pipeline=True)); the flat-heap bound must still hold",
    )
    args = parser.parse_args(argv)

    if args.pipeline and not args.memory:
        parser.error("--pipeline only applies to --memory runs")
    if args.memory:
        try:
            requests_list = [
                int(r) for r in args.requests.split(",") if r.strip()
            ]
        except ValueError:
            parser.error(f"bad --requests list {args.requests!r}")
        return run_memory(
            args.engine if args.engine != "auto" else "segmented",
            args.disks,
            requests_list,
            args.chunk_requests,
            pipeline=args.pipeline,
        )

    from repro import obs
    from repro.disksim.simulator import replay_coverage, reset_replay_coverage
    from repro.experiments.schemes import run_workload
    from repro.workloads.registry import WORKLOAD_NAMES, build_workload

    names = list(args.workloads) or list(WORKLOAD_NAMES)
    unknown = set(names) - set(WORKLOAD_NAMES)
    if unknown:
        parser.error(f"unknown workloads {sorted(unknown)}; choose from {WORKLOAD_NAMES}")
    workloads = [build_workload(n) for n in names]

    if args.metrics:
        # Note: observability adds per-replay bookkeeping, so profile rows
        # are no longer strictly comparable to a --metrics-free run.
        obs.enable()
    reset_replay_coverage()
    profiler = cProfile.Profile()
    profiler.enable()
    for wl in workloads:
        run_workload(wl, engine=args.engine)
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.coverage:
        print_coverage_breakdown(replay_coverage())
    if args.metrics:
        snap = obs.metrics.snapshot()
        print("metric snapshot:")
        for key in sorted(snap["counters"]):
            print(f"  {key}: {snap['counters'][key]}")
        for key in sorted(snap["histograms"]):
            h = snap["histograms"][key]
            print(
                f"  {key}: count={h['count']} sum={h['sum']:.4f}s "
                f"max={h['max']:.4f}s"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
