"""Profile the experiment engine's hot path under cProfile.

Run from the repository root::

    PYTHONPATH=src python tools/profile_sim.py [workload ...] [--sort KEY]
                                               [--limit N] [--coverage]
                                               [--engine ENGINE]

With no arguments, profiles the full default suite set (every Table 2
benchmark under all 7 schemes), serial and uncached — the same work
``ExperimentContext.all_suites()`` does on a cold run.  Prints the top
functions by ``tottime`` (override with ``--sort cumulative`` etc.).
``--coverage`` additionally prints the replay-engine coverage counters
plus a breakdown of where sub-requests ran (vector/scalar/stepwise) and
*why* work left the batch kernels — the ``fallback_*`` escape reasons and
the window-level bailout counters; ``--engine`` forces a replay engine
(default ``auto``).

This is the harness behind the numbers in docs/performance.md; use it to
check that a change actually moves the needle before trusting wall-clock
timings, and ``tools/bench_engine.py`` for the end-to-end measurement.
"""
from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def print_coverage_breakdown(cov: dict[str, int]) -> None:
    """Pretty-print the raw coverage counters plus a scalar-bailout digest.

    The digest answers the two tuning questions directly: *where did the
    sub-requests run* (vector / scalar kernel / stepwise escapes) and *why
    did work leave the batch kernels* (per-reason ``fallback_*`` escapes
    and window-level bailouts), so a routing change can be judged without
    mentally diffing sixteen counters.
    """
    print("replay engine coverage:")
    for key, value in cov.items():
        print(f"  {key}: {value}")

    sub_paths = (
        ("vector kernel", cov.get("subrequests_vector", 0)),
        ("scalar kernel", cov.get("subrequests_scalar", 0)),
        ("stepwise/exact", cov.get("subrequests_stepwise", 0)),
    )
    total_subs = sum(v for _, v in sub_paths)
    print("sub-request placement:")
    if total_subs:
        for name, value in sub_paths:
            print(f"  {name}: {value} ({100.0 * value / total_subs:.1f}%)")
    else:
        print("  (no sub-requests replayed)")

    fallbacks = {
        key[len("fallback_"):].replace("_", " "): value
        for key, value in cov.items()
        if key.startswith("fallback_")
    }
    total_fb = sum(fallbacks.values())
    print("scalar bailout reasons (escapes to the exact state machine):")
    if total_fb:
        for name, value in sorted(
            fallbacks.items(), key=lambda kv: kv[1], reverse=True
        ):
            if value:
                print(f"  {name}: {value} ({100.0 * value / total_fb:.1f}%)")
    else:
        print("  (none — every sub-request stayed on the batch kernels)")

    print("vector-window bailouts:")
    print(f"  rounding-guard exits: {cov.get('bailouts', 0)}")
    print(
        "  windows too short for the vector kernel: "
        f"{cov.get('windows_scalar_short_run', 0)}"
    )
    print(
        "  directives clamped mid-service: "
        f"{cov.get('directive_mid_service', 0)}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "workloads",
        nargs="*",
        help="benchmark names to profile (default: all Table 2 workloads)",
    )
    parser.add_argument("--sort", default="tottime", help="pstats sort key")
    parser.add_argument(
        "--limit", type=int, default=25, help="rows of profile output"
    )
    parser.add_argument(
        "--coverage",
        action="store_true",
        help="print the replay-engine coverage counters after the run",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="run with repro.obs enabled and print the metric snapshot "
        "(engine selection, fallbacks, per-RPM service counts, cache)",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=("auto", "stepwise", "segmented"),
        help="replay engine to profile (default: auto)",
    )
    args = parser.parse_args(argv)

    from repro import obs
    from repro.disksim.simulator import replay_coverage, reset_replay_coverage
    from repro.experiments.schemes import run_workload
    from repro.workloads.registry import WORKLOAD_NAMES, build_workload

    names = list(args.workloads) or list(WORKLOAD_NAMES)
    unknown = set(names) - set(WORKLOAD_NAMES)
    if unknown:
        parser.error(f"unknown workloads {sorted(unknown)}; choose from {WORKLOAD_NAMES}")
    workloads = [build_workload(n) for n in names]

    if args.metrics:
        # Note: observability adds per-replay bookkeeping, so profile rows
        # are no longer strictly comparable to a --metrics-free run.
        obs.enable()
    reset_replay_coverage()
    profiler = cProfile.Profile()
    profiler.enable()
    for wl in workloads:
        run_workload(wl, engine=args.engine)
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.coverage:
        print_coverage_breakdown(replay_coverage())
    if args.metrics:
        snap = obs.metrics.snapshot()
        print("metric snapshot:")
        for key in sorted(snap["counters"]):
            print(f"  {key}: {snap['counters'][key]}")
        for key in sorted(snap["histograms"]):
            h = snap["histograms"][key]
            print(
                f"  {key}: count={h['count']} sum={h['sum']:.4f}s "
                f"max={h['max']:.4f}s"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
