"""Line-coverage measurement with nothing but the standard library.

CI gates coverage with ``pytest-cov`` (see ``.github/workflows/ci.yml``),
but the development container deliberately carries no coverage package —
this tool exists so the gate's floor can be measured and re-derived
locally without installing anything:

* **executable lines** come from the AST: every statement's line span
  per module under ``src/repro`` (docstring expressions excluded,
  ``TYPE_CHECKING``-only imports excluded — the usual never-executed
  noise);
* **executed lines** come from ``sys.settrace``, filtered to ``repro``
  frames only so the tracer tax stays bounded;
* the report mirrors ``coverage report``'s shape (per-file stmts/miss/%)
  and ``--fail-under`` mirrors ``--cov-fail-under``.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [-o report.json]
        [--fail-under PCT] [pytest args...]

Default pytest args: ``-q tests``.  Numbers differ from pytest-cov's by
a point or two (branch vs line granularity, docstring treatment), which
is why the CI floor is set a safety margin below the measured baseline.
"""
from __future__ import annotations

import argparse
import ast
import json
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


# --------------------------------------------------------------------- #
# Executable-line extraction (AST)
# --------------------------------------------------------------------- #
def _docstring_lines(node: ast.AST) -> set[int]:
    """Line numbers of the docstring expression of one def/class/module."""
    body = getattr(node, "body", None)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        end = body[0].end_lineno or body[0].lineno
        return set(range(body[0].lineno, end + 1))
    return set()


def executable_lines(path: Path) -> set[int]:
    """Statement line numbers of one module, minus structural noise."""
    tree = ast.parse(path.read_text(), filename=str(path))
    skip: set[int] = set()
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            skip |= _docstring_lines(node)
        if isinstance(node, ast.If):
            # ``if TYPE_CHECKING:`` bodies never execute at runtime.
            test = node.test
            name = (
                test.id
                if isinstance(test, ast.Name)
                else test.attr
                if isinstance(test, ast.Attribute)
                else None
            )
            if name == "TYPE_CHECKING":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.stmt):
                        skip.add(sub.lineno)
                skip.discard(node.lineno)
        if isinstance(node, ast.stmt) and not isinstance(
            node, (ast.Module, ast.Pass)
        ):
            lines.add(node.lineno)
    return lines - skip


# --------------------------------------------------------------------- #
# Execution tracing (sys.settrace)
# --------------------------------------------------------------------- #
class LineCollector:
    """Records executed (file, line) pairs for frames under ``src/repro``."""

    def __init__(self, root: Path):
        self._prefix = str(root) + "/"
        self.hits: dict[str, set[int]] = {}

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def global_trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(self._prefix):
            return None  # frame outside repro: no per-line cost
        self.hits.setdefault(filename, set()).add(frame.f_lineno)
        return self._local

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


# --------------------------------------------------------------------- #
def build_report(collector: LineCollector) -> dict:
    files = sorted(SRC.rglob("*.py"))
    rows = []
    total_stmts = total_hit = 0
    for path in files:
        stmts = executable_lines(path)
        hit = collector.hits.get(str(path), set()) & stmts
        missed = stmts - hit
        total_stmts += len(stmts)
        total_hit += len(hit)
        rows.append(
            {
                "file": str(path.relative_to(REPO)),
                "stmts": len(stmts),
                "miss": len(missed),
                "cover_pct": round(100.0 * len(hit) / len(stmts), 1)
                if stmts
                else 100.0,
            }
        )
    total_pct = 100.0 * total_hit / total_stmts if total_stmts else 100.0
    return {
        "tool": "tools/measure_coverage.py (stdlib AST + settrace)",
        "total": {
            "stmts": total_stmts,
            "hit": total_hit,
            "cover_pct": round(total_pct, 2),
        },
        "files": rows,
    }


def print_report(report: dict, worst: int = 15) -> None:
    rows = sorted(report["files"], key=lambda r: r["cover_pct"])
    print(f"{'file':60s} {'stmts':>6s} {'miss':>6s} {'cover':>7s}")
    for row in rows[:worst]:
        print(
            f"{row['file']:60s} {row['stmts']:6d} {row['miss']:6d} "
            f"{row['cover_pct']:6.1f}%"
        )
    if len(rows) > worst:
        print(f"  ... {len(rows) - worst} better-covered files elided ...")
    t = report["total"]
    print(f"{'TOTAL':60s} {t['stmts']:6d} {t['stmts'] - t['hit']:6d} "
          f"{t['cover_pct']:6.1f}%")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="also write the full per-file report as JSON")
    parser.add_argument("--fail-under", type=float, default=None, metavar="PCT",
                        help="exit non-zero when total coverage is below PCT")
    parser.add_argument("pytest_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to pytest (default: -q tests)")
    # REMAINDER only kicks in at the first positional-looking token, so
    # option-like pytest args (`-q tests/faults`) need parse_known_args;
    # anything this parser doesn't own is pytest's.
    args, extra = parser.parse_known_args(argv)
    args.pytest_args = extra + [a for a in args.pytest_args if a != "--"]

    import pytest

    collector = LineCollector(SRC)
    collector.install()
    try:
        rc = pytest.main(args.pytest_args or ["-q", "tests"])
    finally:
        collector.uninstall()
    if rc != 0:
        print(f"pytest failed (exit {rc}); coverage not evaluated")
        return int(rc)

    report = build_report(collector)
    print_report(report)
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.fail_under is not None:
        if report["total"]["cover_pct"] < args.fail_under:
            print(
                f"FAIL: total coverage {report['total']['cover_pct']}% "
                f"< required {args.fail_under}%"
            )
            return 2
        print(
            f"coverage gate ok: {report['total']['cover_pct']}% "
            f">= {args.fail_under}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
