"""Bench trajectory: append BENCH_*.json snapshots to ``BENCH_history.jsonl``.

The committed ``BENCH_*.json`` reports are overwritten on every
regeneration, so the repo keeps no memory of how the numbers move.  This
tool gives the benches a trajectory: each regeneration appends one
machine-stamped JSONL record (flattened numeric metrics + platform) to
``BENCH_history.jsonl``, and every append is compared against the previous
record *for the same bench on the same platform* — any metric that moved
more than 10 % in the bad direction is flagged.

Direction is inferred from the metric name: ``*speedup*`` and
``*throughput*`` / ``*_per_s`` are better-higher; ``*_s`` (seconds) and
``*overhead*`` are better-lower; anything else is informational only.

Usage::

    PYTHONPATH=src python tools/bench_history.py BENCH_engine.json ...
    PYTHONPATH=src python tools/bench_history.py --check   # exit 1 on flags

``tools/bench_engine.py`` and ``tools/bench_scale.py`` call
:func:`record` automatically after rewriting their reports, so running the
benches is enough to grow the history.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = REPO / "BENCH_history.jsonl"
DEFAULT_BENCHES = (
    "BENCH_engine.json",
    "BENCH_trace.json",
    "BENCH_sim.json",
    "BENCH_scale.json",
)

#: Relative move (in the bad direction) that gets flagged as a regression.
REGRESSION_THRESHOLD = 0.10

_SKIP_TOP = {"schema", "machine", "command", "note"}


def flatten_metrics(obj, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf of a bench report."""
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not prefix and key in _SKIP_TOP:
                continue
            out.update(flatten_metrics(value, f"{prefix}{key}."))
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            out.update(flatten_metrics(value, f"{prefix}{i}."))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix[:-1]] = float(obj)
    return out


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    low = name.lower()
    if "speedup" in low or "throughput" in low or low.endswith("_per_s"):
        return 1
    if "overhead" in low:
        return -1
    if low.endswith("_s") or "_s." in low or "wall" in low or "time" in low:
        return -1
    return 0


def compare(prev: dict[str, float], cur: dict[str, float]) -> list[str]:
    """Regression flags for metrics that moved >10 % the wrong way."""
    flags: list[str] = []
    for name, value in sorted(cur.items()):
        before = prev.get(name)
        direction = metric_direction(name)
        if before is None or direction == 0 or before == 0:
            continue
        change = (value - before) / abs(before)
        if direction * change < -REGRESSION_THRESHOLD:
            flags.append(
                f"{name}: {before:g} -> {value:g} "
                f"({change:+.1%}, {'higher' if direction > 0 else 'lower'}"
                " is better)"
            )
    return flags


def _load_history(history_path: Path) -> list[dict]:
    if not history_path.exists():
        return []
    records = []
    for line in history_path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def record(
    bench_path: str | Path,
    history_path: str | Path = DEFAULT_HISTORY,
    now: float | None = None,
) -> list[str]:
    """Append one snapshot of ``bench_path``; return its regression flags.

    The previous entry used for comparison is the most recent record of
    the same bench file taken on the same platform string — numbers from
    a different machine say nothing about a code regression.
    """
    bench_path = Path(bench_path)
    history_path = Path(history_path)
    report = json.loads(bench_path.read_text())
    plat = platform.platform()
    entry = {
        "recorded_unix": round(now if now is not None else time.time(), 3),
        "bench": bench_path.name,
        "machine": {
            "platform": plat,
            "python": platform.python_version(),
        },
        "metrics": flatten_metrics(report),
    }
    prev = None
    for old in reversed(_load_history(history_path)):
        if (
            old.get("bench") == entry["bench"]
            and old.get("machine", {}).get("platform") == plat
        ):
            prev = old
            break
    flags = compare(prev["metrics"], entry["metrics"]) if prev else []
    if flags:
        entry["regressions"] = flags
    with history_path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return flags


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benches",
        nargs="*",
        help="BENCH_*.json reports to snapshot (default: all committed ones)",
    )
    parser.add_argument(
        "--history",
        default=str(DEFAULT_HISTORY),
        help=f"history file (default: {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any snapshot flags a >10%% regression",
    )
    args = parser.parse_args(argv)

    benches = args.benches or [
        str(REPO / name) for name in DEFAULT_BENCHES if (REPO / name).exists()
    ]
    any_flags = False
    for bench in benches:
        flags = record(bench, args.history)
        name = Path(bench).name
        if flags:
            any_flags = True
            print(f"{name}: {len(flags)} regression(s) vs previous snapshot")
            for flag in flags:
                print(f"  REGRESSION {flag}")
        else:
            print(f"{name}: snapshot appended, no regressions flagged")
    return 1 if (args.check and any_flags) else 0


if __name__ == "__main__":
    sys.exit(main())
